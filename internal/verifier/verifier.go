// Package verifier implements OROCHI's audit procedure (SSCO_AUDIT2,
// Fig. 12): balanced-trace validation, ProcessOpReports (consistent
// ordering, §3.5), the versioned redo pass (§4.5), grouped
// SIMD-on-demand re-execution with simulate-and-check (§3.1, §3.3), and
// the final output comparison. The verifier trusts only the trace and
// the program; reports are untrusted.
package verifier

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"orochi/internal/core"
	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/sqlmini"
	"orochi/internal/trace"
	"orochi/internal/vstore"
)

// Options configures an audit.
type Options struct {
	// MaxGroup caps requests re-executed in one SIMD batch (the paper's
	// implementation uses 3000 to avoid thrashing, §4.7).
	MaxGroup int
	// SmallGroup is the Phase-3 small-group batching threshold:
	// consecutive runs of group tasks for the same script whose batches
	// all hold fewer than SmallGroup requests are packed into one worker
	// task sharing a lang.Session (pooled frames and lane slices), so a
	// workload dominated by tiny control-flow groups does not pay a cold
	// activation per group. Each group still re-executes as its own SIMD
	// batch with its own digest check, and failures are still arbitrated
	// in canonical (tag, chunk) order, so verdicts, forensics, and stats
	// are bit-identical at any setting. 0 uses the default (8); negative
	// disables packing.
	SmallGroup int
	// CollectStats gathers per-group instruction statistics (Fig. 11).
	CollectStats bool
	// MaxSteps bounds each group re-execution (0 = interpreter default).
	MaxSteps int64
	// Workers is the number of concurrent audit workers: Phase 2 replays
	// independent object logs in parallel and Phase 3 re-executes
	// control-flow groups on a worker pool ("the verifier can re-execute
	// groups in any order", §3.1/§4.7). <= 0 uses every available CPU;
	// 1 reproduces the sequential audit. Any setting yields a
	// bit-identical verdict: a reject deterministically reports the
	// first failure in group order.
	Workers int
	// Observer, if non-nil, receives progress callbacks (phase starts
	// and ends, groups re-executed, ops replayed, the verdict). With
	// Workers > 1 some callbacks fire concurrently; see Observer.
	Observer Observer
	// Engine selects the language execution engine for Phase-3
	// re-execution (nil = lang.DefaultEngine). Verdicts are
	// bit-identical across engines; the server and verifier may even
	// use different engines.
	Engine lang.Engine
}

// ErrAuditCanceled reports an audit abandoned because its context was
// cancelled. Cancellation is never a verdict: the audit returns this
// error (wrapping the context's cause, so errors.Is matches both) with
// a nil Result, and re-running the audit with a live context yields
// exactly the verdict the uncancelled run would have produced.
var ErrAuditCanceled = errors.New("audit canceled")

// auditCanceled wraps ctx's cause so callers can match either
// ErrAuditCanceled or the underlying context error.
func auditCanceled(ctx context.Context) error {
	return fmt.Errorf("verifier: %w: %w", ErrAuditCanceled, context.Cause(ctx))
}

// GroupStat describes one re-executed control-flow group: the (n_c,
// α_c, ℓ_c) triple of Fig. 11.
type GroupStat struct {
	Tag    uint64
	Script string
	N      int     // requests in the group
	Len    int64   // instructions executed
	Alpha  float64 // fraction executed univalently
}

// Stats carries the audit-time cost decomposition (Fig. 9) and group
// statistics (Fig. 11).
type Stats struct {
	// Phase timings. ReExec is wall time of the (possibly parallel)
	// re-execution phase; DBQuery is versioned-SELECT time summed across
	// workers, so with Workers > 1 it can exceed ReExec.
	ProcOpRep time.Duration // ProcessOpReports (Figures 5 & 6)
	DBRedo    time.Duration // versioned redo pass (§4.5)
	ReExec    time.Duration // grouped re-execution (SIMD + simulate-and-check)
	DBQuery   time.Duration // versioned SELECTs inside ReExec
	Other     time.Duration // input setup, output comparison, etc.
	Total     time.Duration

	// Query dedup effectiveness (§4.5).
	DedupHits, DedupMisses int64
	// Instruction counts across all groups.
	InstrUni, InstrMulti int64
	// Groups re-executed; FallbackRequests counts requests replayed
	// individually after a multivalue-mixture fallback (§4.3).
	Groups           []GroupStat
	FallbackRequests int
	RequestsReplayed int
	// GroupBatches counts the (tag, chunk) batches Phase 3 completed —
	// the denominator of the live dedup ratio (batches re-executed vs
	// requests replayed) surfaced on /-/metrics. Unlike Groups it is
	// collected unconditionally.
	GroupBatches int
}

// Result is the audit outcome.
type Result struct {
	Accepted bool
	// Reason explains a rejection (empty when accepted).
	Reason string
	// Forensics is the structured evidence behind a rejection: the
	// failing phase and check, the implicated request/group/object, and
	// the traced-vs-re-executed diff where one exists. Nil when accepted.
	// Like Reason, it is deterministic at any Workers setting.
	Forensics *Forensics
	Stats     Stats
	// FinalDB holds the versioned database after the redo pass when the
	// audit accepts; its latest state seeds the next audit period
	// (§4.5).
	FinalDB *vstore.VersionedDB

	finalKV   map[string]lang.Value
	finalRegs map[string]lang.Value
}

// FinalSnapshot derives the post-period object state from the audit:
// the migrated database, the KV store's latest values, and each
// register's last logged write. Audit periods chain by feeding this
// snapshot to the next Audit call as its initial state — the verifier
// "produces the required state during the previous audit" (§4.1, §4.5).
// Only valid on an accepted Result.
func (r *Result) FinalSnapshot() (*object.Snapshot, error) {
	if !r.Accepted {
		return nil, fmt.Errorf("verifier: FinalSnapshot on a rejected audit")
	}
	final, err := r.FinalDB.MigrateFinal()
	if err != nil {
		return nil, err
	}
	snap := &object.Snapshot{
		Registers: make(map[string]lang.Value, len(r.finalRegs)),
		KV:        make(map[string]lang.Value, len(r.finalKV)),
	}
	for k, v := range r.finalRegs {
		snap.Registers[k] = lang.CloneValue(v)
	}
	for k, v := range r.finalKV {
		snap.KV[k] = lang.CloneValue(v)
	}
	for _, name := range final.Tables() {
		snap.Tables = append(snap.Tables, final.TableCopy(name))
	}
	return snap, nil
}

// Audit runs the full audit with a background context.
//
// Deprecated: use AuditContext, which supports cancellation and
// progress observation. This wrapper remains for callers predating the
// context-aware API.
func Audit(prog *lang.Program, tr *trace.Trace, rep *reports.Reports, init *object.Snapshot, opts Options) (*Result, error) {
	return AuditContext(context.Background(), prog, tr, rep, init, opts)
}

// AuditContext runs the full audit. A non-nil error reports an internal
// fault (not a verification verdict); verification verdicts are in
// Result. Cancelling ctx abandons the audit between work items — the
// worker pools stop pulling tasks, AuditContext returns an error
// matching ErrAuditCanceled, and no verdict is produced (cancellation
// is never a REJECT): re-auditing the same period later yields the
// verdict the uncancelled run would have reached, bit for bit.
func AuditContext(ctx context.Context, prog *lang.Program, tr *trace.Trace, rep *reports.Reports, init *object.Snapshot, opts Options) (*Result, error) {
	if opts.MaxGroup <= 0 {
		opts.MaxGroup = 3000
	}
	if opts.SmallGroup == 0 {
		opts.SmallGroup = 8
	}
	workers := normWorkers(opts.Workers)
	obs := hook{opts.Observer}
	if init == nil {
		init = object.EmptySnapshot()
	}
	if ctx.Err() != nil {
		return nil, auditCanceled(ctx)
	}
	start := time.Now()
	res := &Result{}
	var env *auditEnv
	reject := func(reason string, f *Forensics) (*Result, error) {
		res.Accepted = false
		res.Reason = reason
		if f == nil {
			f = &Forensics{Phase: PhaseValidation, Check: "unclassified"}
		}
		if f.Detail == "" {
			f.Detail = reason
		}
		res.Forensics = f
		if env != nil {
			// A rejected audit still reports the versioned-query time it
			// spent (the Fig. 9 decomposition); a mid-Phase-3 reject would
			// otherwise under-report DBQuery as zero.
			res.Stats.DBQuery = env.dbQueryTime()
		}
		res.Stats.Total = time.Since(start)
		obs.verdict(false, reason)
		return res, nil
	}

	// The trace must be balanced before SSCO_AUDIT runs (§3).
	if err := tr.Balanced(); err != nil {
		return reject("unbalanced trace: "+err.Error(),
			&Forensics{Phase: PhaseValidation, Check: "unbalanced-trace"})
	}
	// Reports must name each object at most once; duplicate identities
	// would let the executor split one object's operations across logs,
	// defeating per-object ordering.
	seenObj := make(map[reports.ObjectID]bool, len(rep.Objects))
	for _, o := range rep.Objects {
		if seenObj[o] {
			return reject(fmt.Sprintf("duplicate object %v in reports", o),
				&Forensics{Phase: PhaseValidation, Check: "duplicate-object", Object: o.String()})
		}
		seenObj[o] = true
	}

	// Phase 1: ProcessOpReports (Figure 5).
	t0 := time.Now()
	obs.phaseStart(PhaseProcessOpReports, 0)
	proc, err := core.ProcessOpReports(tr, rep)
	res.Stats.ProcOpRep = time.Since(t0)
	if err != nil {
		var rej *core.RejectError
		if errors.As(err, &rej) {
			return reject(rej.Error(), forensicsFromReject(PhaseProcessOpReports, rej))
		}
		return nil, err
	}
	obs.phaseEnd(PhaseProcessOpReports, res.Stats.ProcOpRep)
	if ctx.Err() != nil {
		return nil, auditCanceled(ctx)
	}

	// Phase 2: versioned redo (§4.5), parallel across independent
	// objects — the DB logs, the KV logs, and each register log have no
	// cross-object ordering constraints.
	t0 = time.Now()
	env = &auditEnv{
		rep:       rep,
		opMap:     proc.OpMap,
		vdb:       vstore.NewVersionedDB(),
		vkv:       vstore.NewVersionedKV(),
		dbLogIdx:  -1,
		initRegs:  init.Registers,
		sqlCache:  make(map[string]sqlmini.Stmt),
		convCache: make(map[*sqlmini.Result]lang.Value),
	}
	for _, tbl := range init.Tables {
		if err := env.vdb.LoadInitial(tbl); err != nil {
			return nil, err
		}
	}
	kvKeys := make([]string, 0, len(init.KV))
	for k := range init.KV {
		kvKeys = append(kvKeys, k)
	}
	sort.Strings(kvKeys)
	for _, k := range kvKeys {
		env.vkv.LoadInitial(k, init.KV[k])
	}
	redoRej, redoDone := runRedo(ctx, env, rep, workers, obs)
	res.Stats.DBRedo = time.Since(t0)
	if !redoDone {
		// Cancelled mid-redo: some object logs never replayed, so even an
		// observed failure cannot be arbitrated to the first one in object
		// order. No verdict — the next audit redoes the phase whole.
		return nil, auditCanceled(ctx)
	}
	if redoRej != nil {
		return reject(redoRej.msg, redoRej.f)
	}
	obs.phaseEnd(PhaseRedo, res.Stats.DBRedo)

	// Phase 3: grouped re-execution (Fig. 12 ReExec2) on a worker pool —
	// groups are independent and re-execute "in any order" (§3.1, §4.7).
	// Output comparison happens inside each group, walking output
	// segments; Phase 4 then only checks coverage. Task outcomes are
	// folded in canonical group order, so the verdict, statistics, and
	// final state never depend on worker scheduling.
	inputs := tr.Inputs()
	responses := tr.Responses()
	produced := make(map[string]bool, len(inputs))

	t0 = time.Now()
	tasks := buildGroupTasks(rep, opts.MaxGroup)
	obs.phaseStart(PhaseReExec, len(tasks))
	for _, out := range runGroupTasks(ctx, prog, env, tasks, inputs, responses, opts, workers, obs) {
		if out == nil {
			// This task was never run because ctx was cancelled. Scanning
			// in task order guarantees every task before a published
			// failure ran, so a cancelled slot before any failure means no
			// verdict can be arbitrated — the audit is abandoned whole.
			return nil, auditCanceled(ctx)
		}
		if out.skipped {
			// Only tasks ordered after the deciding failure are skipped,
			// and that failure returns below before the scan gets here.
			break
		}
		mergeStats(&res.Stats, &out.stats)
		for rid := range out.produced {
			produced[rid] = true
		}
		if out.err != nil {
			return nil, out.err
		}
		if out.rej != nil {
			res.Stats.ReExec = time.Since(t0)
			return reject(out.rej.msg, out.rej.f)
		}
		res.Stats.GroupBatches++
	}
	res.Stats.ReExec = time.Since(t0)
	res.Stats.DBQuery = env.dbQueryTime()
	obs.phaseEnd(PhaseReExec, res.Stats.ReExec)

	// Phase 4: every traced request must have been re-executed and
	// compared (Fig. 12 lines 55-57). Missing rids are collected and
	// sorted so the reported request is the same on every run — map
	// iteration order must never pick the offender.
	t0 = time.Now()
	obs.phaseStart(PhaseCoverage, 0)
	var missing []string
	for rid := range responses {
		if !produced[rid] {
			missing = append(missing, rid)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		res.Stats.Other = time.Since(t0)
		return reject(fmt.Sprintf("request %s was not re-executed (missing from control-flow groups)", missing[0]),
			&Forensics{Phase: PhaseCoverage, Check: "coverage", RequestID: missing[0]})
	}
	res.Stats.Other = time.Since(t0)
	obs.phaseEnd(PhaseCoverage, res.Stats.Other)
	res.Stats.RequestsReplayed = len(produced)
	res.Stats.Total = time.Since(start)
	res.Accepted = true
	res.FinalDB = env.vdb
	res.finalKV = env.vkv.Final()
	res.finalRegs = finalRegisters(rep, init)
	obs.verdict(true, "")
	return res, nil
}

// finalRegisters derives each register's post-period value: its last
// logged write, or its initial value if never written. It runs only on
// accepted audits, where Phase 2 has already validated that every
// logged register write decodes.
func finalRegisters(rep *reports.Reports, init *object.Snapshot) map[string]lang.Value {
	out := make(map[string]lang.Value, len(init.Registers))
	for k, v := range init.Registers {
		out[k] = v
	}
	for i, objID := range rep.Objects {
		if objID.Kind != reports.RegisterObj {
			continue
		}
		log := rep.OpLogs[i]
		for j := len(log) - 1; j >= 0; j-- {
			if log[j].Type == lang.RegisterWrite {
				v, err := lang.DecodeValue(log[j].Value)
				if err != nil {
					// Unreachable after Phase 2 validation; never chain a
					// value we could not decode.
					panic(fmt.Sprintf("verifier: undecodable register write survived Phase 2: %v", err))
				}
				out[objID.Name] = v
				break
			}
		}
	}
	return out
}

// runGroup re-executes one batch of a control-flow group. It returns a
// non-nil rejection for verification failures, carrying both the reject
// message and its forensics record.
func runGroup(prog *lang.Program, env *auditEnv, script string, tag uint64, rids []string,
	inputs map[string]trace.Input, responses map[string]string, produced map[string]bool,
	opts Options, ses *lang.Session, stats *Stats) (*rejection, error) {

	// groupRej stamps the batch coordinates common to every failure in
	// this batch; the caller adds the chunk index.
	groupRej := func(msg string, f *Forensics) *rejection {
		f.Phase = PhaseReExec
		if f.Script == "" {
			f.Script = script
		}
		f.GroupTag = tagString(tag)
		f.GroupSize = len(rids)
		return &rejection{msg: msg, f: f}
	}
	gInputs := make([]lang.RequestInput, len(rids))
	for i, rid := range rids {
		in, ok := inputs[rid]
		if !ok {
			return groupRej(fmt.Sprintf("group %x names unknown request %s", tag, rid),
				&Forensics{Check: "unknown-request", RequestID: rid}), nil
		}
		// The group's alleged entry point must be the one the trace
		// recorded for each member. Without this check a malicious
		// executor could deny any request by serving the canonical
		// fault of a nonexistent script and grouping the rid under that
		// script name — re-execution would faithfully reproduce the
		// forged "unknown script" fault and accept it.
		if in.Script != script {
			return groupRej(fmt.Sprintf("group %x claims script %q but request %s arrived for %q",
				tag, script, rid, in.Script),
				&Forensics{Check: "script-mismatch", RequestID: rid}), nil
		}
		gInputs[i] = lang.RequestInput{Get: in.Get, Post: in.Post, Cookie: in.Cookie}
	}
	// The bridge is per-batch even when a session is shared across a
	// pack: the dedup QueryCache's hit/miss counts feed Stats, and the
	// nondeterminism cursors must restart per batch, so sharing either
	// would change observable audit state.
	bridge := newAuditBridge(env)
	res, err := lang.Run(prog, lang.Config{
		Mode: lang.ModeSIMD, Script: script, RIDs: rids, Inputs: gInputs,
		Bridge: bridge, CollectStats: opts.CollectStats, MaxSteps: opts.MaxSteps,
		Engine: opts.Engine, Session: ses,
	})
	stats.DedupHits += bridge.cache.Hits
	stats.DedupMisses += bridge.cache.Misses
	var fault *lang.RuntimeError
	switch {
	case err == nil:
		// fall through to checks below
	case errors.Is(err, lang.ErrDivergence):
		return groupRej(fmt.Sprintf("group %x diverged during re-execution", tag),
			&Forensics{Check: "divergence"}), nil
	default:
		var fb *lang.FallbackError
		if errors.As(err, &fb) && len(rids) > 1 {
			// Unsupported multivalue mixture: re-execute individually
			// (§4.3). Correctness is unchanged — grouping is only an
			// optimization.
			for _, rid := range rids {
				// The session carries through: its lane-slice pool is
				// width-guarded, so the 1-lane replays simply rebuild it.
				if rej, err := runGroup(prog, env, script, tag, []string{rid}, inputs, responses, produced, opts, ses, stats); err != nil || rej != nil {
					return rej, err
				}
				stats.FallbackRequests++
			}
			return nil, nil
		}
		var rej *core.RejectError
		if errors.As(err, &rej) {
			return groupRej(rej.Error(), forensicsFromReject(PhaseReExec, rej)), nil
		}
		var rt *lang.RuntimeError
		if !errors.As(err, &rt) {
			return nil, err
		}
		if res == nil {
			return groupRej(fmt.Sprintf("group %x: runtime error during re-execution: %v", tag, rt),
				&Forensics{Check: "runtime-error"}), nil
		}
		// An error group: every lane faulted at the same point with the
		// same fault (anything else surfaced as divergence above). The
		// checks below then hold the group to the same standard as a
		// completed one — partial op counts against M, and the canonical
		// fault rendering against each traced response.
		fault = rt
	}
	// Op-count check (Fig. 12 line 51): each request must have issued
	// exactly M(rid) operations. Exceeding M is caught by CheckOp
	// ((rid,opnum) absent from OpMap); finishing early is caught here.
	// For an error group, M covers the operations issued before the
	// fault, so the same check applies.
	for _, rid := range rids {
		if res.OpCount < env.rep.OpCounts[rid] {
			return groupRej(fmt.Sprintf("request %s finished with %d ops, M says %d", rid, res.OpCount, env.rep.OpCounts[rid]),
				&Forensics{Check: "op-count", RequestID: rid,
					OpsReported: env.rep.OpCounts[rid], OpsReplayed: res.OpCount}), nil
		}
	}
	// Compare outputs against the trace. A completed group walks output
	// segments so shared bytes are compared once per group; an error
	// group compares the canonical fault rendering (what the honest
	// server served) — a tampered error body, a fault relocated to a
	// different site, or a successful request forged into an error
	// group all mismatch here.
	rendered := ""
	if fault != nil {
		rendered = lang.RenderFault(fault)
	}
	for i, rid := range rids {
		want, ok := responses[rid]
		if !ok {
			return groupRej(fmt.Sprintf("group %x names request %s with no response in the trace", tag, rid),
				&Forensics{Check: "missing-response", RequestID: rid}), nil
		}
		if fault != nil {
			if want != rendered {
				return groupRej(fmt.Sprintf("error output mismatch for %s", rid),
					&Forensics{Check: "error-output-mismatch", RequestID: rid,
						Diff: diffResponses(want, rendered)}), nil
			}
		} else if !res.OutputEqual(i, want) {
			return groupRej(fmt.Sprintf("output mismatch for %s", rid),
				&Forensics{Check: "output-mismatch", RequestID: rid,
					Diff: diffResponses(want, res.Output(i))}), nil
		}
		produced[rid] = true
	}
	if opts.CollectStats {
		total := res.InstrUni + res.InstrMulti
		alpha := 1.0
		if total > 0 {
			alpha = float64(res.InstrUni) / float64(total)
		}
		stats.InstrUni += res.InstrUni
		stats.InstrMulti += res.InstrMulti
		stats.Groups = append(stats.Groups, GroupStat{
			Tag: tag, Script: script, N: len(rids), Len: total, Alpha: alpha,
		})
	}
	return nil, nil
}

// dedupeRIDs drops duplicate requestIDs, preserving order (re-execution
// is idempotent, so duplicates are legal but wasteful; §3.1).
func dedupeRIDs(rids []string) []string {
	seen := make(map[string]bool, len(rids))
	out := rids[:0:0]
	for _, r := range rids {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}
