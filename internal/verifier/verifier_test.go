package verifier

import (
	"fmt"
	"strings"
	"testing"

	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/server"
	"orochi/internal/trace"
)

// testApp is a small application exercising all three object kinds plus
// nondeterminism.
var testApp = map[string]string{
	"visit": `
$user = $_COOKIE["user"];
$sess = session_get("sess:" . $user);
if (!is_array($sess)) {
  $sess = ["visits" => 0];
}
$sess["visits"] = $sess["visits"] + 1;
session_set("sess:" . $user, $sess);
$hits = apc_get("hits");
if ($hits === null) { $hits = 0; }
apc_set("hits", $hits + 1);
echo "<html>hello " . $user . ", visit " . $sess["visits"] . "</html>";
`,
	"post": `
$title = $_POST["title"];
$r = db_exec("INSERT INTO posts (title, votes) VALUES (" . db_quote($title) . ", 0)");
echo "created post " . $r["insert_id"];
`,
	"list": `
$rows = db_query("SELECT id, title, votes FROM posts ORDER BY id");
echo "<ul>";
foreach ($rows as $row) {
  echo "<li>" . $row["id"] . ":" . htmlspecialchars($row["title"]) . " (" . $row["votes"] . ")</li>";
}
echo "</ul>";
`,
	"vote": `
$id = intval($_GET["id"]);
db_exec("UPDATE posts SET votes = votes + 1 WHERE id = " . $id);
$rows = db_query("SELECT votes FROM posts WHERE id = " . $id);
if (count($rows) > 0) {
  echo "votes=" . $rows[0]["votes"];
} else {
  echo "no such post";
}
`,
	"now": `
$t = time();
$r = mt_rand(1, 100);
echo "t=" . ($t > 0 ? "ok" : "bad") . " r=" . (($r >= 1 && $r <= 100) ? "ok" : "bad");
`,
}

var testSchema = []string{
	`CREATE TABLE posts (id INT PRIMARY KEY AUTOINCREMENT, title TEXT, votes INT)`,
}

func compileApp(t *testing.T) *lang.Program {
	t.Helper()
	prog, err := lang.Compile(testApp)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// serveWorkload runs the inputs against a recording server and returns
// everything the verifier needs.
func serveWorkload(t *testing.T, prog *lang.Program, inputs []trace.Input, concurrency int) (*trace.Trace, *serverArtifacts) {
	t.Helper()
	srv := server.New(prog, server.Options{Record: true})
	if err := srv.Setup(testSchema); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	srv.ServeAll(inputs, concurrency)
	return srv.Trace(), &serverArtifacts{srv: srv, snap: snap}
}

type serverArtifacts struct {
	srv  *server.Server
	snap *object.Snapshot
}

func mustAudit(t *testing.T, prog *lang.Program, tr *trace.Trace, art *serverArtifacts) *Result {
	t.Helper()
	res, err := Audit(prog, tr, art.srv.Reports(), art.snap, Options{CollectStats: true})
	if err != nil {
		t.Fatalf("audit error: %v", err)
	}
	return res
}

func sampleInputs(n int) []trace.Input {
	var inputs []trace.Input
	users := []string{"alice", "bob", "carol"}
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0, 1:
			inputs = append(inputs, trace.Input{
				Script: "visit",
				Cookie: map[string]string{"user": users[i%len(users)]},
			})
		case 2:
			inputs = append(inputs, trace.Input{
				Script: "post",
				Post:   map[string]string{"title": fmt.Sprintf("Post #%d", i)},
			})
		case 3:
			inputs = append(inputs, trace.Input{Script: "list"})
		default:
			inputs = append(inputs, trace.Input{
				Script: "now",
			})
		}
	}
	return inputs
}

func TestAuditAcceptsHonestSequential(t *testing.T) {
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, sampleInputs(25), 1)
	res := mustAudit(t, prog, tr, art)
	if !res.Accepted {
		t.Fatalf("honest sequential execution rejected: %s", res.Reason)
	}
	if res.Stats.RequestsReplayed != 25 {
		t.Fatalf("replayed %d requests, want 25", res.Stats.RequestsReplayed)
	}
}

func TestAuditAcceptsHonestConcurrent(t *testing.T) {
	prog := compileApp(t)
	for _, conc := range []int{2, 4, 8} {
		tr, art := serveWorkload(t, prog, sampleInputs(60), conc)
		res := mustAudit(t, prog, tr, art)
		if !res.Accepted {
			t.Fatalf("honest concurrent (%d) execution rejected: %s", conc, res.Reason)
		}
	}
}

func TestAuditAcceptsVotesReadModifyWrite(t *testing.T) {
	prog := compileApp(t)
	inputs := []trace.Input{
		{Script: "post", Post: map[string]string{"title": "target"}},
	}
	for i := 0; i < 20; i++ {
		inputs = append(inputs, trace.Input{Script: "vote", Get: map[string]string{"id": "1"}})
	}
	tr, art := serveWorkload(t, prog, inputs, 6)
	res := mustAudit(t, prog, tr, art)
	if !res.Accepted {
		t.Fatalf("vote workload rejected: %s", res.Reason)
	}
}

func TestAuditGroupsDeduplicate(t *testing.T) {
	// Many identical 'list' requests must form one group with high alpha.
	prog := compileApp(t)
	inputs := []trace.Input{{Script: "post", Post: map[string]string{"title": "only"}}}
	for i := 0; i < 30; i++ {
		inputs = append(inputs, trace.Input{Script: "list"})
	}
	tr, art := serveWorkload(t, prog, inputs, 1)
	res := mustAudit(t, prog, tr, art)
	if !res.Accepted {
		t.Fatalf("rejected: %s", res.Reason)
	}
	var listGroup *GroupStat
	for i := range res.Stats.Groups {
		if res.Stats.Groups[i].Script == "list" && res.Stats.Groups[i].N > 1 {
			listGroup = &res.Stats.Groups[i]
		}
	}
	if listGroup == nil {
		t.Fatal("expected a multi-request 'list' group")
	}
	if listGroup.N != 30 {
		t.Fatalf("list group size = %d, want 30", listGroup.N)
	}
	if listGroup.Alpha < 0.95 {
		t.Fatalf("alpha = %f, want > 0.95 (Fig. 11 shape)", listGroup.Alpha)
	}
	if res.Stats.DedupHits == 0 {
		t.Fatal("expected read-query dedup hits for identical SELECTs")
	}
}

// --- Soundness: tampering must be rejected ---

func TestAuditRejectsTamperedResponse(t *testing.T) {
	prog := compileApp(t)
	srv := server.New(prog, server.Options{
		Record: true,
		TamperResponse: func(rid, body string) string {
			if rid == "r000007" {
				return body + "<!-- tampered -->"
			}
			return body
		},
	})
	if err := srv.Setup(testSchema); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	srv.ServeAll(sampleInputs(20), 4)
	res, err := Audit(prog, srv.Trace(), srv.Reports(), snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("tampered response must be rejected")
	}
	if !strings.Contains(res.Reason, "output mismatch") && !strings.Contains(res.Reason, "diverge") {
		t.Logf("reject reason: %s", res.Reason)
	}
}

func TestAuditRejectsForgedWriteValue(t *testing.T) {
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, sampleInputs(20), 4)
	rep := art.srv.Reports()
	// Forge a logged register write's value.
	forged := false
	for i := range rep.OpLogs {
		for j := range rep.OpLogs[i] {
			if rep.OpLogs[i][j].Type == lang.RegisterWrite {
				rep.OpLogs[i][j].Value = lang.EncodeValue(lang.Value("forged"))
				forged = true
				break
			}
		}
		if forged {
			break
		}
	}
	if !forged {
		t.Fatal("no register write found to forge")
	}
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("forged write value must be rejected")
	}
}

func TestAuditRejectsDroppedLogEntry(t *testing.T) {
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, sampleInputs(20), 4)
	rep := art.srv.Reports()
	for i := range rep.OpLogs {
		if len(rep.OpLogs[i]) > 0 {
			rep.OpLogs[i] = rep.OpLogs[i][1:]
			break
		}
	}
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("dropped log entry must be rejected")
	}
}

func TestAuditRejectsDuplicatedLogEntry(t *testing.T) {
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, sampleInputs(20), 4)
	rep := art.srv.Reports()
	for i := range rep.OpLogs {
		if len(rep.OpLogs[i]) > 0 {
			rep.OpLogs[i] = append(rep.OpLogs[i], rep.OpLogs[i][0])
			break
		}
	}
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("duplicated log entry must be rejected")
	}
}

func TestAuditRejectsWrongOpCount(t *testing.T) {
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, sampleInputs(20), 4)
	rep := art.srv.Reports()
	for rid, m := range rep.OpCounts {
		if m > 0 {
			rep.OpCounts[rid] = m - 1
			break
		}
	}
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("wrong op count must be rejected")
	}
}

func TestAuditRejectsOmittedRequestFromGroups(t *testing.T) {
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, sampleInputs(12), 2)
	rep := art.srv.Reports()
	for tag, rids := range rep.Groups {
		if len(rids) > 0 {
			rep.Groups[tag] = rids[1:]
			break
		}
	}
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("omitting a request from the groups must be rejected")
	}
	if !strings.Contains(res.Reason, "not re-executed") {
		t.Logf("reason: %s", res.Reason)
	}
}

func TestAuditRejectsWrongGrouping(t *testing.T) {
	// Move a request into a group with a different control flow.
	prog := compileApp(t)
	inputs := []trace.Input{
		{Script: "visit", Cookie: map[string]string{"user": "alice"}},
		{Script: "visit", Cookie: map[string]string{"user": "alice"}},
		{Script: "list"},
	}
	tr, art := serveWorkload(t, prog, inputs, 1)
	rep := art.srv.Reports()
	// Find the list group and a visit group; move the list rid into the
	// visit group.
	var listTag, visitTag uint64
	for tag, script := range rep.Scripts {
		if script == "list" {
			listTag = tag
		} else if script == "visit" {
			visitTag = tag
		}
	}
	if listTag == 0 || visitTag == 0 {
		t.Fatal("missing expected groups")
	}
	rep.Groups[visitTag] = append(rep.Groups[visitTag], rep.Groups[listTag]...)
	delete(rep.Groups, listTag)
	delete(rep.Scripts, listTag)
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("wrong grouping must be rejected")
	}
}

func TestAuditRejectsForgedNonDet(t *testing.T) {
	prog := compileApp(t)
	inputs := []trace.Input{{Script: "now"}, {Script: "now"}}
	tr, art := serveWorkload(t, prog, inputs, 1)
	rep := art.srv.Reports()
	// Forge an out-of-range mt_rand result.
	forged := false
	for rid := range rep.NonDet {
		for i := range rep.NonDet[rid] {
			if rep.NonDet[rid][i].Fn == "mt_rand" {
				rep.NonDet[rid][i].Value = lang.EncodeValue(lang.Value(int64(9999)))
				forged = true
			}
		}
	}
	if !forged {
		t.Fatal("no mt_rand record found")
	}
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("out-of-range nondet must be rejected")
	}
}

func TestAuditRejectsUnbalancedTrace(t *testing.T) {
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, sampleInputs(5), 1)
	tr.Events = tr.Events[:len(tr.Events)-1] // drop final response
	res, err := Audit(prog, tr, art.srv.Reports(), art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("unbalanced trace must be rejected")
	}
}

func TestAuditRejectsDuplicateObjectIdentity(t *testing.T) {
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, sampleInputs(10), 1)
	rep := art.srv.Reports()
	if len(rep.Objects) == 0 {
		t.Fatal("no objects")
	}
	// Split the first object's log into two logs with the same identity.
	rep.Objects = append(rep.Objects, rep.Objects[0])
	rep.OpLogs = append(rep.OpLogs, nil)
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("duplicate object identity must be rejected")
	}
}

func TestAuditFinalStateMatchesServer(t *testing.T) {
	// After an accepted audit, the migrated final DB state must equal
	// the server's actual final state.
	prog := compileApp(t)
	inputs := []trace.Input{
		{Script: "post", Post: map[string]string{"title": "a"}},
		{Script: "post", Post: map[string]string{"title": "b"}},
		{Script: "vote", Get: map[string]string{"id": "1"}},
	}
	tr, art := serveWorkload(t, prog, inputs, 1)
	res := mustAudit(t, prog, tr, art)
	if !res.Accepted {
		t.Fatalf("rejected: %s", res.Reason)
	}
	final, err := res.FinalDB.MigrateFinal()
	if err != nil {
		t.Fatal(err)
	}
	want, err := art.srv.Store.DB.Exec(`SELECT id, title, votes FROM posts ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := final.Exec(`SELECT id, title, votes FROM posts ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("row counts: server %d, migrated %d", len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if want.Rows[i][j] != got.Rows[i][j] {
				t.Fatalf("row %d col %d: server %v, migrated %v", i, j, want.Rows[i][j], got.Rows[i][j])
			}
		}
	}
}

func TestAuditSmallMaxGroupChunks(t *testing.T) {
	prog := compileApp(t)
	inputs := []trace.Input{}
	for i := 0; i < 20; i++ {
		inputs = append(inputs, trace.Input{Script: "list"})
	}
	tr, art := serveWorkload(t, prog, inputs, 1)
	res, err := Audit(prog, tr, art.srv.Reports(), art.snap, Options{MaxGroup: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("chunked audit rejected: %s", res.Reason)
	}
}

func TestAuditEmptyTrace(t *testing.T) {
	prog := compileApp(t)
	srv := server.New(prog, server.Options{Record: true})
	snap := srv.Snapshot()
	res, err := Audit(prog, srv.Trace(), srv.Reports(), snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("empty trace must be accepted: %s", res.Reason)
	}
}
