package verifier

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/server"
	"orochi/internal/trace"
	"orochi/internal/workload"
)

// These tests pin the parallel audit engine's contract: any Workers
// setting produces a bit-identical verdict (Accepted, Reason, final
// snapshot, statistics) to the sequential audit, on honest and
// misbehaving executions alike. CI runs this package under -race, which
// exercises the worker-pool interleavings.

// snapshotFingerprint canonically renders a snapshot for comparison
// (Snapshot.Encode gobs maps, whose wire order is not deterministic).
func snapshotFingerprint(t *testing.T, snap *object.Snapshot) string {
	t.Helper()
	var b strings.Builder
	keys := make([]string, 0, len(snap.Registers))
	for k := range snap.Registers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "reg %s=%s\n", k, lang.EncodeValue(snap.Registers[k]))
	}
	keys = keys[:0]
	for k := range snap.KV {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "kv %s=%s\n", k, lang.EncodeValue(snap.KV[k]))
	}
	for _, tbl := range snap.Tables {
		fmt.Fprintf(&b, "table %s auto=%d\n", tbl.Name, tbl.NextAuto)
		for _, row := range tbl.Rows {
			fmt.Fprintf(&b, "  %v\n", row)
		}
	}
	return b.String()
}

// serveParallelWorkload runs a workload (schema + seed + requests)
// against a recording server, optionally tampering responses.
func serveParallelWorkload(t *testing.T, w *workload.Workload, conc int,
	tamper func(rid, body string) string) (*lang.Program, *trace.Trace, *serverArtifacts) {
	t.Helper()
	prog := w.App.Compile()
	srv := server.New(prog, server.Options{Record: true, TamperResponse: tamper})
	if err := srv.Setup(w.App.Schema); err != nil {
		t.Fatal(err)
	}
	if err := srv.Setup(w.Seed); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	srv.ServeAll(w.Requests, conc)
	return prog, srv.Trace(), &serverArtifacts{srv: srv, snap: snap}
}

func parallelWorkloads() map[string]*workload.Workload {
	// Wiki and forum, both with injected faulting requests: error groups
	// must take the same deterministic path under parallel re-execution.
	return map[string]*workload.Workload{
		"wiki": workload.WithErrors(
			workload.Wiki(workload.WikiParams{Requests: 250, Pages: 25, ZipfS: 0.53, Seed: 11}),
			workload.ErrorMixParams{Rate: 0.15, Seed: 7}),
		"forum": workload.WithErrors(
			workload.Forum(workload.ForumParams{Requests: 250, Topics: 8, Users: 12, GuestRatio: 0.8, Seed: 12}),
			workload.ErrorMixParams{Rate: 0.15, Seed: 8}),
	}
}

// TestParallelAuditMatchesSequential audits honest wiki/forum runs (with
// faults injected) at Workers 1 and 8 and requires identical results.
func TestParallelAuditMatchesSequential(t *testing.T) {
	for name, w := range parallelWorkloads() {
		t.Run(name, func(t *testing.T) {
			prog, tr, art := serveParallelWorkload(t, w, 6, nil)
			seq, err := Audit(prog, tr, art.srv.Reports(), art.snap, Options{Workers: 1, CollectStats: true})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Audit(prog, tr, art.srv.Reports(), art.snap, Options{Workers: 8, CollectStats: true})
			if err != nil {
				t.Fatal(err)
			}
			if !seq.Accepted {
				t.Fatalf("sequential audit rejected: %s", seq.Reason)
			}
			if par.Accepted != seq.Accepted || par.Reason != seq.Reason {
				t.Fatalf("verdicts differ: seq (%v, %q) vs parallel (%v, %q)",
					seq.Accepted, seq.Reason, par.Accepted, par.Reason)
			}
			seqSnap, err := seq.FinalSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			parSnap, err := par.FinalSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			if sf, pf := snapshotFingerprint(t, seqSnap), snapshotFingerprint(t, parSnap); sf != pf {
				t.Fatalf("final snapshots differ:\n--- sequential ---\n%s--- parallel ---\n%s", sf, pf)
			}
			// The merged statistics must be scheduling-independent too.
			if seq.Stats.RequestsReplayed != par.Stats.RequestsReplayed {
				t.Fatalf("RequestsReplayed: seq %d, parallel %d", seq.Stats.RequestsReplayed, par.Stats.RequestsReplayed)
			}
			if seq.Stats.InstrUni != par.Stats.InstrUni || seq.Stats.InstrMulti != par.Stats.InstrMulti {
				t.Fatalf("instruction counts differ: seq (%d,%d) vs parallel (%d,%d)",
					seq.Stats.InstrUni, seq.Stats.InstrMulti, par.Stats.InstrUni, par.Stats.InstrMulti)
			}
			if len(seq.Stats.Groups) != len(par.Stats.Groups) {
				t.Fatalf("group stats: seq %d entries, parallel %d", len(seq.Stats.Groups), len(par.Stats.Groups))
			}
			for i := range seq.Stats.Groups {
				if seq.Stats.Groups[i] != par.Stats.Groups[i] {
					t.Fatalf("group stat %d differs: %+v vs %+v", i, seq.Stats.Groups[i], par.Stats.Groups[i])
				}
			}
		})
	}
}

// TestParallelAuditRejectDeterminism tampers one response and requires
// every worker count to report the sequential audit's exact verdict.
func TestParallelAuditRejectDeterminism(t *testing.T) {
	for name, w := range parallelWorkloads() {
		t.Run(name, func(t *testing.T) {
			tampered := fmt.Sprintf("r%06d", len(w.Requests)/2)
			prog, tr, art := serveParallelWorkload(t, w, 6, func(rid, body string) string {
				if rid == tampered {
					return body + "<!-- tampered -->"
				}
				return body
			})
			seq, err := Audit(prog, tr, art.srv.Reports(), art.snap, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if seq.Accepted {
				t.Fatal("tampered response must be rejected")
			}
			for _, workers := range []int{2, 8} {
				par, err := Audit(prog, tr, art.srv.Reports(), art.snap, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if par.Accepted {
					t.Fatalf("workers=%d accepted a tampered response", workers)
				}
				if par.Reason != seq.Reason {
					t.Fatalf("workers=%d reason %q, sequential reason %q", workers, par.Reason, seq.Reason)
				}
			}
		})
	}
}

// TestParallelAuditSmallChunks exercises multi-chunk groups (MaxGroup
// far below group sizes) across worker counts.
func TestParallelAuditSmallChunks(t *testing.T) {
	prog := compileApp(t)
	inputs := []trace.Input{{Script: "post", Post: map[string]string{"title": "only"}}}
	for i := 0; i < 40; i++ {
		inputs = append(inputs, trace.Input{Script: "list"})
	}
	tr, art := serveWorkload(t, prog, inputs, 4)
	for _, workers := range []int{1, 3, 8} {
		res, err := Audit(prog, tr, art.srv.Reports(), art.snap, Options{MaxGroup: 4, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("workers=%d rejected: %s", workers, res.Reason)
		}
		if res.Stats.RequestsReplayed != 41 {
			t.Fatalf("workers=%d replayed %d requests, want 41", workers, res.Stats.RequestsReplayed)
		}
	}
}

// TestRejectedAuditCarriesTimings is the regression test for the
// verdict-reporting bug where a mid-Phase-3 reject dropped
// Stats.DBQuery: a rejected audit's Fig. 9 cost decomposition must
// still carry the versioned-query time and phase timings it spent.
func TestRejectedAuditCarriesTimings(t *testing.T) {
	prog := compileApp(t)
	// posts populate the DB log (DBRedo > 0); the tampered 'list'
	// request's own group issues versioned SELECTs before its output
	// comparison fails, so DBQuery > 0 on every schedule.
	var inputs []trace.Input
	for i := 0; i < 6; i++ {
		inputs = append(inputs, trace.Input{Script: "post", Post: map[string]string{"title": fmt.Sprintf("p%d", i)}})
	}
	listRID := fmt.Sprintf("r%06d", len(inputs)+1) // rids are 1-indexed
	for i := 0; i < 10; i++ {
		inputs = append(inputs, trace.Input{Script: "list"})
	}
	srv := server.New(prog, server.Options{
		Record: true,
		TamperResponse: func(rid, body string) string {
			if rid == listRID {
				return body + "<!-- tampered -->"
			}
			return body
		},
	})
	if err := srv.Setup(testSchema); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	srv.ServeAll(inputs, 1)
	for _, workers := range []int{1, 4} {
		res, err := Audit(prog, srv.Trace(), srv.Reports(), snap, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatal("tampered response must be rejected")
		}
		if !strings.Contains(res.Reason, "output mismatch") {
			t.Fatalf("unexpected reject reason: %s", res.Reason)
		}
		st := res.Stats
		if st.DBQuery <= 0 {
			t.Fatalf("workers=%d: rejected audit reports DBQuery=%v, want > 0", workers, st.DBQuery)
		}
		if st.ProcOpRep <= 0 || st.DBRedo <= 0 || st.ReExec <= 0 || st.Total <= 0 {
			t.Fatalf("workers=%d: rejected audit dropped phase timings: %+v", workers, st)
		}
	}
}

// TestPhase2RejectCarriesDBRedo: a reject during the versioned redo
// itself must still report the redo time spent (same under-reporting
// class as the DBQuery fix, one phase earlier).
func TestPhase2RejectCarriesDBRedo(t *testing.T) {
	prog := compileApp(t)
	inputs := sampleInputs(12)
	tr, art := serveWorkload(t, prog, inputs, 2)
	rep := art.srv.Reports()
	forged := false
	for i := range rep.OpLogs {
		for j := range rep.OpLogs[i] {
			if rep.OpLogs[i][j].Type == lang.KvSet {
				rep.OpLogs[i][j].Value = "\x00not-a-value"
				forged = true
				break
			}
		}
		if forged {
			break
		}
	}
	if !forged {
		t.Fatal("no KV write found to forge")
	}
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("undecodable KV write must be rejected")
	}
	if !strings.Contains(res.Reason, "undecodable KV write") {
		t.Fatalf("unexpected reject reason: %s", res.Reason)
	}
	if res.Stats.DBRedo <= 0 || res.Stats.ProcOpRep <= 0 {
		t.Fatalf("Phase 2 reject dropped timings: %+v", res.Stats)
	}
}
