package verifier

import (
	"testing"

	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/trace"
)

// Figure 4 of the paper: two requests r1 (script f) and r2 (script g),
// two registers A and B initialized to 0.
//
//	f: write(A,1); x = read(B); output x
//	g: write(B,1); y = read(A); output y
//
// Example (a): r1 completes before r2 arrives; responses (1, 0); the
// logs claim r2's operations happened before r1's. A correct verifier
// must REJECT (the only output consistent with the trace is (0, 1)).
//
// Example (b): r1 and r2 are concurrent; responses (0, 0); each log
// orders the read before the other request's write. Must REJECT (no
// schedule produces (0,0)).
//
// Example (c): concurrent; responses (1, 1); both writes precede both
// reads in the logs. Must ACCEPT.
var fig4App = map[string]string{
	"f": `
session_set("A", 1);
$x = session_get("B");
echo $x;
`,
	"g": `
session_set("B", 1);
$y = session_get("A");
echo $y;
`,
}

const (
	fTag = uint64(101)
	gTag = uint64(102)
)

func fig4Snapshot() *object.Snapshot {
	return &object.Snapshot{
		Registers: map[string]lang.Value{"A": int64(0), "B": int64(0)},
		KV:        map[string]lang.Value{},
	}
}

func fig4Reports(olA, olB []reports.OpEntry) *reports.Reports {
	return &reports.Reports{
		Groups:  map[uint64][]string{fTag: {"r1"}, gTag: {"r2"}},
		Scripts: map[uint64]string{fTag: "f", gTag: "g"},
		Objects: []reports.ObjectID{
			{Kind: reports.RegisterObj, Name: "A"},
			{Kind: reports.RegisterObj, Name: "B"},
		},
		OpLogs:   [][]reports.OpEntry{olA, olB},
		OpCounts: map[string]int{"r1": 2, "r2": 2},
		NonDet:   map[string][]reports.NDEntry{},
	}
}

func fig4Audit(t *testing.T, tr *trace.Trace, rep *reports.Reports) *Result {
	t.Helper()
	prog, err := lang.Compile(fig4App)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Audit(prog, tr, rep, fig4Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// write/read log entry helpers; opnum follows program order: the write
// is op 1, the read op 2 in both scripts.
func wOp(rid string, opnum int, reg string) reports.OpEntry {
	return reports.OpEntry{RID: rid, Opnum: opnum, Type: lang.RegisterWrite,
		Key: reg, Value: lang.EncodeValue(lang.Value(int64(1)))}
}
func rOp(rid string, opnum int, reg string) reports.OpEntry {
	return reports.OpEntry{RID: rid, Opnum: opnum, Type: lang.RegisterRead, Key: reg}
}

func fig4Event(kind trace.EventKind, rid string, t int64, script, body string) trace.Event {
	ev := trace.Event{Kind: kind, RID: rid, Time: t}
	if kind == trace.Request {
		ev.In = trace.Input{Script: script}
	} else {
		ev.Body = body
	}
	return ev
}

func TestFigure4aRejected(t *testing.T) {
	// Sequential: r1 req, r1 resp "1", r2 req, r2 resp "0".
	tr := &trace.Trace{Events: []trace.Event{
		fig4Event(trace.Request, "r1", 1, "f", ""),
		fig4Event(trace.Response, "r1", 2, "", "1"),
		fig4Event(trace.Request, "r2", 3, "g", ""),
		fig4Event(trace.Response, "r2", 4, "", "0"),
	}}
	// Logs arranged to be consistent with the bogus responses:
	// OL_A: r2's read(A) then r1's write(A,1) -> read sees 0.
	// OL_B: r2's write(B,1) then r1's read(B) -> read sees 1.
	olA := []reports.OpEntry{rOp("r2", 2, "A"), wOp("r1", 1, "A")}
	olB := []reports.OpEntry{wOp("r2", 1, "B"), rOp("r1", 2, "B")}
	res := fig4Audit(t, tr, fig4Reports(olA, olB))
	if res.Accepted {
		t.Fatal("Figure 4(a) must be rejected: accepting would validate a spurious schedule")
	}
	t.Logf("rejected with: %s", res.Reason)
}

func TestFigure4bRejected(t *testing.T) {
	// Concurrent: r1 req, r2 req, r1 resp "0", r2 resp "0".
	tr := &trace.Trace{Events: []trace.Event{
		fig4Event(trace.Request, "r1", 1, "f", ""),
		fig4Event(trace.Request, "r2", 2, "g", ""),
		fig4Event(trace.Response, "r1", 3, "", "0"),
		fig4Event(trace.Response, "r2", 4, "", "0"),
	}}
	// Each log claims the read preceded the other's write: a cycle.
	olA := []reports.OpEntry{rOp("r2", 2, "A"), wOp("r1", 1, "A")}
	olB := []reports.OpEntry{rOp("r1", 2, "B"), wOp("r2", 1, "B")}
	res := fig4Audit(t, tr, fig4Reports(olA, olB))
	if res.Accepted {
		t.Fatal("Figure 4(b) must be rejected: (0,0) is consistent with no schedule")
	}
	t.Logf("rejected with: %s", res.Reason)
}

func TestFigure4cAccepted(t *testing.T) {
	// Concurrent: responses (1, 1) — a well-behaved executor can produce
	// this by executing both writes before either read.
	tr := &trace.Trace{Events: []trace.Event{
		fig4Event(trace.Request, "r1", 1, "f", ""),
		fig4Event(trace.Request, "r2", 2, "g", ""),
		fig4Event(trace.Response, "r1", 3, "", "1"),
		fig4Event(trace.Response, "r2", 4, "", "1"),
	}}
	olA := []reports.OpEntry{wOp("r1", 1, "A"), rOp("r2", 2, "A")}
	olB := []reports.OpEntry{wOp("r2", 1, "B"), rOp("r1", 2, "B")}
	res := fig4Audit(t, tr, fig4Reports(olA, olB))
	if !res.Accepted {
		t.Fatalf("Figure 4(c) must be accepted (Completeness); got: %s", res.Reason)
	}
}

func TestFigure4LegalSequential(t *testing.T) {
	// Sanity: the truly sequential honest execution — r1 then r2 with
	// responses (0, 1) — is accepted with honestly ordered logs.
	tr := &trace.Trace{Events: []trace.Event{
		fig4Event(trace.Request, "r1", 1, "f", ""),
		fig4Event(trace.Response, "r1", 2, "", "0"),
		fig4Event(trace.Request, "r2", 3, "g", ""),
		fig4Event(trace.Response, "r2", 4, "", "1"),
	}}
	olA := []reports.OpEntry{wOp("r1", 1, "A"), rOp("r2", 2, "A")}
	olB := []reports.OpEntry{rOp("r1", 2, "B"), wOp("r2", 1, "B")}
	res := fig4Audit(t, tr, fig4Reports(olA, olB))
	if !res.Accepted {
		t.Fatalf("honest sequential execution must be accepted; got: %s", res.Reason)
	}
}

func TestFigure4WrongOutputRejected(t *testing.T) {
	// Same consistent logs as (c) but the executor claims outputs (1, 0):
	// re-execution produces (1,1), so the comparison fails.
	tr := &trace.Trace{Events: []trace.Event{
		fig4Event(trace.Request, "r1", 1, "f", ""),
		fig4Event(trace.Request, "r2", 2, "g", ""),
		fig4Event(trace.Response, "r1", 3, "", "1"),
		fig4Event(trace.Response, "r2", 4, "", "0"),
	}}
	olA := []reports.OpEntry{wOp("r1", 1, "A"), rOp("r2", 2, "A")}
	olB := []reports.OpEntry{wOp("r2", 1, "B"), rOp("r1", 2, "B")}
	res := fig4Audit(t, tr, fig4Reports(olA, olB))
	if res.Accepted {
		t.Fatal("mismatched output must be rejected")
	}
}

// TestFigure4SimulateAndCheckAloneInsufficient documents §3.4: with the
// consistent-ordering check removed, simulate-and-check alone would
// accept examples (a) and (b). We verify our verifier rejects them at
// the ordering stage specifically (the reject reason mentions a cycle),
// demonstrating that the ordering check is the thing catching them.
func TestFigure4SimulateAndCheckAloneInsufficient(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{
		fig4Event(trace.Request, "r1", 1, "f", ""),
		fig4Event(trace.Request, "r2", 2, "g", ""),
		fig4Event(trace.Response, "r1", 3, "", "0"),
		fig4Event(trace.Response, "r2", 4, "", "0"),
	}}
	olA := []reports.OpEntry{rOp("r2", 2, "A"), wOp("r1", 1, "A")}
	olB := []reports.OpEntry{rOp("r1", 2, "B"), wOp("r2", 1, "B")}
	res := fig4Audit(t, tr, fig4Reports(olA, olB))
	if res.Accepted {
		t.Fatal("must reject")
	}
	// The reject must come from the ordering check: the logs and the
	// responses are mutually consistent, so re-execution alone would
	// reproduce the spurious outputs.
	if want := "cycle"; !containsStr(res.Reason, want) {
		t.Fatalf("expected the consistent-ordering (cycle) check to fire, got: %s", res.Reason)
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
