package verifier

import (
	"testing"

	"orochi/internal/lang"
	"orochi/internal/reports"
	"orochi/internal/trace"
)

// TestOOOAcceptsHonest: the Appendix A out-of-order audit accepts honest
// concurrent executions.
func TestOOOAcceptsHonest(t *testing.T) {
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, sampleInputs(30), 6)
	res, err := OOOAudit(prog, tr, art.srv.Reports(), art.snap)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("OOO audit rejected honest run: %s", res.Reason)
	}
	if res.Stats.RequestsReplayed != 30 {
		t.Fatalf("replayed %d", res.Stats.RequestsReplayed)
	}
}

// TestOOODifferentialWithSIMD: the grouped verifier and the OOO verifier
// must agree on every verdict — honest and tampered (Lemma 8 made
// executable).
func TestOOODifferentialWithSIMD(t *testing.T) {
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, sampleInputs(25), 4)

	tampers := []struct {
		name string
		mut  func(*reports.Reports)
	}{
		{"honest", func(*reports.Reports) {}},
		{"forged-write", func(rep *reports.Reports) {
			for i := range rep.OpLogs {
				for j := range rep.OpLogs[i] {
					if rep.OpLogs[i][j].Type == lang.RegisterWrite {
						rep.OpLogs[i][j].Value = lang.EncodeValue(lang.Value("evil"))
						return
					}
				}
			}
		}},
		{"dropped-entry", func(rep *reports.Reports) {
			for i := range rep.OpLogs {
				if len(rep.OpLogs[i]) > 0 {
					rep.OpLogs[i] = rep.OpLogs[i][1:]
					return
				}
			}
		}},
		{"wrong-count", func(rep *reports.Reports) {
			for rid, m := range rep.OpCounts {
				if m > 0 {
					rep.OpCounts[rid] = m - 1
					return
				}
			}
		}},
		{"missing-group-member", func(rep *reports.Reports) {
			for tag, rids := range rep.Groups {
				if len(rids) > 0 {
					rep.Groups[tag] = rids[1:]
					return
				}
			}
		}},
	}
	for _, tc := range tampers {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rep := art.srv.Reports().Clone()
			tc.mut(rep)
			simd, err := Audit(prog, tr, rep, art.snap, Options{})
			if err != nil {
				t.Fatal(err)
			}
			ooo, err := OOOAudit(prog, tr, rep, art.snap)
			if err != nil {
				t.Fatal(err)
			}
			// One caveat: group membership does not exist in the OOO
			// audit (it replays every traced request), so the
			// missing-group-member tamper is only caught by the grouped
			// verifier's coverage check.
			if tc.name == "missing-group-member" {
				if simd.Accepted {
					t.Fatal("grouped verifier must reject missing group member")
				}
				return
			}
			if simd.Accepted != ooo.Accepted {
				t.Fatalf("verdicts disagree: SIMD=%v (%s) OOO=%v (%s)",
					simd.Accepted, simd.Reason, ooo.Accepted, ooo.Reason)
			}
		})
	}
}

// TestOOORejectsFigure4a: the ordering attacks are caught before any
// re-execution, identically in both verifiers.
func TestOOORejectsFigure4a(t *testing.T) {
	prog, err := lang.Compile(fig4App)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{Events: []trace.Event{
		fig4Event(trace.Request, "r1", 1, "f", ""),
		fig4Event(trace.Response, "r1", 2, "", "1"),
		fig4Event(trace.Request, "r2", 3, "g", ""),
		fig4Event(trace.Response, "r2", 4, "", "0"),
	}}
	olA := []reports.OpEntry{rOp("r2", 2, "A"), wOp("r1", 1, "A")}
	olB := []reports.OpEntry{wOp("r2", 1, "B"), rOp("r1", 2, "B")}
	res, err := OOOAudit(prog, tr, fig4Reports(olA, olB), fig4Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("OOO audit must reject Figure 4(a)")
	}
}

// TestOOOAcceptsFigure4c: and the legal concurrent interleaving passes.
func TestOOOAcceptsFigure4c(t *testing.T) {
	prog, err := lang.Compile(fig4App)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{Events: []trace.Event{
		fig4Event(trace.Request, "r1", 1, "f", ""),
		fig4Event(trace.Request, "r2", 2, "g", ""),
		fig4Event(trace.Response, "r1", 3, "", "1"),
		fig4Event(trace.Response, "r2", 4, "", "1"),
	}}
	olA := []reports.OpEntry{wOp("r1", 1, "A"), rOp("r2", 2, "A")}
	olB := []reports.OpEntry{wOp("r2", 1, "B"), rOp("r1", 2, "B")}
	res, err := OOOAudit(prog, tr, fig4Reports(olA, olB), fig4Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("OOO audit must accept Figure 4(c): %s", res.Reason)
	}
}

// TestOOORejectsTamperedResponse: output comparison works per request.
func TestOOORejectsTamperedResponse(t *testing.T) {
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, sampleInputs(10), 2)
	// Tamper the trace body directly (equivalent to a tampered wire).
	for i := range tr.Events {
		if tr.Events[i].Kind == trace.Response {
			tr.Events[i].Body += "<!--evil-->"
			break
		}
	}
	res, err := OOOAudit(prog, tr, art.srv.Reports(), art.snap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("OOO audit must reject tampered response")
	}
}

// TestOOOExtraOpsRejected: a request that wants more ops than M claims
// fails CheckOp inside the drained finish loop.
func TestOOOExtraOpsRejected(t *testing.T) {
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, []trace.Input{
		{Script: "visit", Cookie: map[string]string{"user": "zed"}},
	}, 1)
	rep := art.srv.Reports().Clone()
	// Claim fewer ops than really happened AND truncate the logs to
	// match, so ProcessOpReports passes but re-execution wants more.
	var rid string
	for r := range rep.OpCounts {
		rid = r
	}
	m := rep.OpCounts[rid]
	if m < 2 {
		t.Skip("need at least 2 ops")
	}
	rep.OpCounts[rid] = m - 1
	for i := range rep.OpLogs {
		var kept []reports.OpEntry
		for _, e := range rep.OpLogs[i] {
			if e.RID == rid && e.Opnum == m {
				continue
			}
			kept = append(kept, e)
		}
		rep.OpLogs[i] = kept
	}
	res, err := OOOAudit(prog, tr, rep, art.snap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("request issuing more ops than M must be rejected")
	}
}
