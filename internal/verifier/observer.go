package verifier

import "time"

// Audit phase names reported to an Observer, in the order they run.
const (
	// PhaseProcessOpReports is Phase 1: ProcessOpReports (Figures 5 & 6).
	PhaseProcessOpReports = "process-op-reports"
	// PhaseRedo is Phase 2: the versioned redo pass over the per-object
	// operation logs (§4.5).
	PhaseRedo = "versioned-redo"
	// PhaseReExec is Phase 3: grouped SIMD re-execution with
	// simulate-and-check (§3.1, §3.3).
	PhaseReExec = "re-execution"
	// PhaseCoverage is Phase 4: the final check that every traced
	// request was re-executed and compared (Fig. 12 lines 55-57).
	PhaseCoverage = "output-coverage"
)

// Observer receives progress callbacks from a running audit. Install
// one via Options.Observer; epoch.AuditorOptions.Observer threads the
// same interface through the background chain auditor.
//
// Observers are for progress reporting (CLI -progress output, the
// /-/epochs endpoint) and for tests that need deterministic hooks into
// the audit's timeline (e.g. cancellation-point injection). They see
// untrusted quantities — group sizes and op counts come from the
// executor's reports — so they must never influence the verdict.
//
// With Options.Workers > 1, GroupReexecuted and OpsReplayed fire
// concurrently from pool workers: implementations must be safe for
// concurrent use and fast (they run on the audit's critical path).
type Observer interface {
	// PhaseStart announces a phase. units is the number of work items
	// the phase will process — object logs for PhaseRedo, group batches
	// for PhaseReExec, and 0 for phases without unit accounting.
	PhaseStart(phase string, units int)
	// PhaseEnd reports a completed phase and its wall time. A phase that
	// rejects or is cancelled partway through gets no PhaseEnd.
	PhaseEnd(phase string, took time.Duration)
	// GroupReexecuted reports one re-executed control-flow group batch:
	// its script, group tag, and how many requests ran in the batch.
	GroupReexecuted(script string, tag uint64, requests int)
	// OpsReplayed reports operations replayed into the versioned stores
	// during PhaseRedo. Increments, not cumulative totals: one call per
	// object log as its replay completes.
	OpsReplayed(ops int)
	// Verdict reports the audit outcome — exactly once per audit that
	// reaches a verdict. It is not called when the audit aborts with an
	// error (cancellation or an internal fault): no verdict exists then.
	Verdict(accepted bool, reason string)
}

// hook is the nil-safe adapter the audit calls through, so the hot path
// never branches on Options.Observer being set at each call site.
type hook struct{ o Observer }

func (h hook) phaseStart(phase string, units int) {
	if h.o != nil {
		h.o.PhaseStart(phase, units)
	}
}

func (h hook) phaseEnd(phase string, took time.Duration) {
	if h.o != nil {
		h.o.PhaseEnd(phase, took)
	}
}

func (h hook) groupReexecuted(script string, tag uint64, requests int) {
	if h.o != nil {
		h.o.GroupReexecuted(script, tag, requests)
	}
}

func (h hook) opsReplayed(ops int) {
	if h.o != nil {
		h.o.OpsReplayed(ops)
	}
}

func (h hook) verdict(accepted bool, reason string) {
	if h.o != nil {
		h.o.Verdict(accepted, reason)
	}
}
