package verifier

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"orochi/internal/core"
	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/sqlmini"
	"orochi/internal/vstore"
)

// auditBridge is the verifier-side lang.Bridge: every state operation is
// validated with CheckOp against the untrusted operation logs and then
// simulated with SimOp (registers walk backward in their log; KV and DB
// reads consult the versioned stores; DB writes return the redo-derived
// results). Non-determinism is replayed from the reports with
// plausibility checks (§4.6).
type auditBridge struct {
	env *auditEnv
	// cache is the per-group read-query dedup cache (§4.5).
	cache *vstore.QueryCache
	// nondet replay cursors and plausibility state, per rid.
	ndPos    map[string]int
	lastTime map[string]int64
	pid      map[string]int64
}

// auditEnv is the audit-wide immutable state shared by all groups.
type auditEnv struct {
	rep      *reports.Reports
	opMap    core.OpMap
	vdb      *vstore.VersionedDB
	vkv      *vstore.VersionedKV
	dbLogIdx int
	// initRegs holds the initial register values (pre-audit snapshot).
	initRegs map[string]lang.Value
	// sqlCache memoizes parsed SQL (statements repeat massively across
	// lanes and groups); convCache memoizes the language-value shape of
	// an engine result, so every lane receiving the same deduplicated
	// result also receives the same *Array — which makes the multivalue
	// collapse check O(1) via pointer equality.
	sqlCache  map[string]sqlmini.Stmt
	convCache map[*sqlmini.Result]lang.Value
	// mu guards the caches: the grouped verifier re-executes groups on a
	// worker pool (Options.Workers) and the OOO audit (Appendix A) steps
	// many request goroutines, so bridge calls overlap. Everything else
	// here is either immutable during Phase 3 (rep, opMap, initRegs) or
	// read-only after its Phase 2 build completes (vdb, vkv — versioned
	// reads are pure lookups).
	mu sync.Mutex
	// dbQueryNanos accumulates versioned-SELECT time (atomically).
	dbQueryNanos atomic.Int64
}

func (env *auditEnv) dbQueryTime() time.Duration {
	return time.Duration(env.dbQueryNanos.Load())
}

func (env *auditEnv) parseSQL(sql string) (sqlmini.Stmt, error) {
	env.mu.Lock()
	defer env.mu.Unlock()
	if st, ok := env.sqlCache[sql]; ok {
		return st, nil
	}
	st, err := sqlmini.Parse(sql)
	if err != nil {
		return nil, err
	}
	env.sqlCache[sql] = st
	return st, nil
}

func (env *auditEnv) convert(r *sqlmini.Result) lang.Value {
	env.mu.Lock()
	defer env.mu.Unlock()
	if v, ok := env.convCache[r]; ok {
		return v
	}
	v := resultToLang(r)
	env.convCache[r] = v
	return v
}

func newAuditBridge(env *auditEnv) *auditBridge {
	return &auditBridge{
		env:      env,
		cache:    vstore.NewQueryCache(env.vdb),
		ndPos:    make(map[string]int),
		lastTime: make(map[string]int64),
		pid:      make(map[string]int64),
	}
}

// checkOp implements CheckOp (Fig. 12 lines 10-15): the operation the
// program produced must exist in the OpMap and match the logged entry's
// object, type, and contents exactly.
func (b *auditBridge) checkOp(rid string, opnum int, wantObj reports.ObjectID, wantType lang.OpType,
	key, value string, stmts []string) (core.LogPos, *reports.OpEntry, error) {

	pos, ok := b.env.opMap[core.OpKey{RID: rid, Opnum: opnum}]
	if !ok {
		return core.LogPos{}, nil, rejectf("check-op", rid, "(%s,%d) not in OpMap", rid, opnum)
	}
	if b.env.rep.Objects[pos.Obj] != wantObj {
		return core.LogPos{}, nil, rejectf("check-op", rid, "(%s,%d): program targeted %v but log %d is %v",
			rid, opnum, wantObj, pos.Obj, b.env.rep.Objects[pos.Obj])
	}
	e := &b.env.rep.OpLogs[pos.Obj][pos.Seq-1]
	if e.Type != wantType {
		return core.LogPos{}, nil, rejectf("check-op", rid, "(%s,%d): type %v logged as %v", rid, opnum, wantType, e.Type)
	}
	if e.Key != key || e.Value != value {
		return core.LogPos{}, nil, rejectf("check-op", rid, "(%s,%d): operands differ from log", rid, opnum)
	}
	if len(stmts) != len(e.Stmts) {
		return core.LogPos{}, nil, rejectf("check-op", rid, "(%s,%d): statement count differs from log", rid, opnum)
	}
	for i := range stmts {
		if stmts[i] != e.Stmts[i] {
			return core.LogPos{}, nil, rejectf("check-op", rid, "(%s,%d): SQL differs from log at stmt %d", rid, opnum, i)
		}
	}
	return pos, e, nil
}

// RegisterRead implements SimOp for registers (Fig. 12 lines 19-23):
// walk backward in the register's log for the latest write; fall back to
// the initial snapshot value (the paper's verifier keeps the pre-audit
// object state, §4.1 — an unwritten register reads as its initial value,
// or null if it never existed, matching the live register object).
func (b *auditBridge) RegisterRead(rid string, opnum int, name string) (lang.Value, error) {
	obj := reports.ObjectID{Kind: reports.RegisterObj, Name: name}
	pos, _, err := b.checkOp(rid, opnum, obj, lang.RegisterRead, name, "", nil)
	if err != nil {
		return nil, err
	}
	log := b.env.rep.OpLogs[pos.Obj]
	for j := pos.Seq - 2; j >= 0; j-- {
		if log[j].Type == lang.RegisterWrite {
			v, derr := lang.DecodeValue(log[j].Value)
			if derr != nil {
				return nil, rejectf("sim-op", rid, "undecodable write value in log %d entry %d: %v", pos.Obj, j, derr)
			}
			return v, nil
		}
	}
	if v, ok := b.env.initRegs[name]; ok {
		return lang.CloneValue(v), nil
	}
	return nil, nil
}

// RegisterWrite checks the write against the log (writes are simulated
// by the log itself; the check is the opportunistic validation of §3.3).
func (b *auditBridge) RegisterWrite(rid string, opnum int, name string, v lang.Value) error {
	obj := reports.ObjectID{Kind: reports.RegisterObj, Name: name}
	_, _, err := b.checkOp(rid, opnum, obj, lang.RegisterWrite, name, lang.EncodeValue(v), nil)
	return err
}

// KvGet reads from the versioned KV store at the op's log sequence.
func (b *auditBridge) KvGet(rid string, opnum int, key string) (lang.Value, error) {
	obj := reports.ObjectID{Kind: reports.KVObj, Name: "apc"}
	pos, _, err := b.checkOp(rid, opnum, obj, lang.KvGet, key, "", nil)
	if err != nil {
		return nil, err
	}
	return lang.CloneValue(b.env.vkv.Get(key, int64(pos.Seq))), nil
}

// KvSet checks the write against the log.
func (b *auditBridge) KvSet(rid string, opnum int, key string, v lang.Value) error {
	obj := reports.ObjectID{Kind: reports.KVObj, Name: "apc"}
	_, _, err := b.checkOp(rid, opnum, obj, lang.KvSet, key, lang.EncodeValue(v), nil)
	return err
}

// DBOp checks the transaction's SQL against the log, then simulates:
// SELECTs go to the versioned DB at ts = seq*MaxQ+q through the dedup
// cache; writes return the redo-derived results; aborted transactions
// return false exactly as the online bridge did.
func (b *auditBridge) DBOp(rid string, opnum int, stmts []string) (lang.Value, error) {
	obj := reports.ObjectID{Kind: reports.DBObj, Name: "main"}
	pos, e, err := b.checkOp(rid, opnum, obj, lang.DBOp, "", "", stmts)
	if err != nil {
		return nil, err
	}
	if !e.OK {
		return false, nil
	}
	seq := int64(pos.Seq)
	out := lang.NewArray()
	for q, sql := range stmts {
		st, perr := b.env.parseSQL(sql)
		if perr != nil {
			// The log says this transaction committed, but its SQL does
			// not parse: the report is spurious.
			return nil, rejectf("sim-op", rid, "logged committed transaction has unparsable SQL: %v", perr)
		}
		if sqlmini.IsWrite(st) {
			r, werr := b.env.vdb.WriteResult(seq, q)
			if werr != nil {
				return nil, rejectf("sim-op", rid, "%v", werr)
			}
			out.Append(b.env.convert(r))
			continue
		}
		sel, isSel := st.(*sqlmini.Select)
		if !isSel {
			return nil, rejectf("sim-op", rid, "unsupported read statement shape")
		}
		start := time.Now()
		r, qerr := b.cache.QueryParsed(sql, sel, vstore.Ts(seq, q))
		b.env.dbQueryNanos.Add(int64(time.Since(start)))
		if qerr != nil {
			return nil, rejectf("sim-op", rid, "versioned query failed: %v", qerr)
		}
		out.Append(b.env.convert(r))
	}
	return out, nil
}

// NonDet replays recorded non-determinism with plausibility checks
// (§4.6): function names must match in order, time must be monotonic
// within a request, pid must be constant, random values must respect
// their requested range. These checks are best-effort by nature — the
// paper documents the same leeway.
func (b *auditBridge) NonDet(rid string, fn string, args []lang.Value) (lang.Value, error) {
	list := b.env.rep.NonDet[rid]
	i := b.ndPos[rid]
	if i >= len(list) {
		return nil, rejectf("nondet", rid, "%s: ran out of recorded values for %s()", rid, fn)
	}
	b.ndPos[rid] = i + 1
	e := list[i]
	if e.Fn != fn {
		return nil, rejectf("nondet", rid, "%s: recorded %s() but program called %s()", rid, e.Fn, fn)
	}
	v, err := lang.DecodeValue(e.Value)
	if err != nil {
		return nil, rejectf("nondet", rid, "%s: undecodable value: %v", rid, err)
	}
	switch fn {
	case "time":
		t, ok := v.(int64)
		if !ok {
			return nil, rejectf("nondet", rid, "%s: time() must be an int", rid)
		}
		if last, seen := b.lastTime[rid]; seen && t < last {
			return nil, rejectf("nondet", rid, "%s: time() went backwards (%d after %d)", rid, t, last)
		}
		b.lastTime[rid] = t
	case "microtime":
		if _, ok := v.(float64); !ok {
			return nil, rejectf("nondet", rid, "%s: microtime() must be a float", rid)
		}
	case "mt_rand", "rand":
		n, ok := v.(int64)
		if !ok {
			return nil, rejectf("nondet", rid, "%s: %s() must be an int", rid, fn)
		}
		if len(args) == 2 {
			lo, hi := lang.ToInt(args[0]), lang.ToInt(args[1])
			if hi >= lo && (n < lo || n > hi) {
				return nil, rejectf("nondet", rid, "%s: %s(%d,%d) returned out-of-range %d", rid, fn, lo, hi, n)
			}
		}
	case "uniqid":
		if _, ok := v.(string); !ok {
			return nil, rejectf("nondet", rid, "%s: uniqid() must be a string", rid)
		}
	case "getmypid":
		p, ok := v.(int64)
		if !ok {
			return nil, rejectf("nondet", rid, "%s: getmypid() must be an int", rid)
		}
		if prev, seen := b.pid[rid]; seen && prev != p {
			return nil, rejectf("nondet", rid, "%s: pid changed within request", rid)
		}
		b.pid[rid] = p
	}
	return v, nil
}

var _ lang.Bridge = (*auditBridge)(nil)

// resultToLang delegates to the object layer's conversion so that the
// verifier feeds the program byte-identical query results to what the
// online bridge produced.
func resultToLang(r *sqlmini.Result) lang.Value {
	return object.ResultToLang(r)
}

func rejectf(stage, rid, format string, args ...interface{}) error {
	return &core.RejectError{Stage: stage, Msg: fmt.Sprintf(format, args...), RID: rid}
}
