package verifier

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"orochi/internal/lang"
	"orochi/internal/reports"
	"orochi/internal/trace"
)

// This file implements the parallel audit engine. The paper observes
// that control-flow groups are re-executed independently — "the verifier
// can re-execute groups in any order" (§3.1, §4.7) — and that the Phase
// 2 redo has no cross-object ordering constraints (each shared object
// has its own operation log, §3.3), so both phases fan out across a
// worker pool. Parallelism must not change the verdict: a rejecting
// audit reports the exact failure a sequential scan would find first,
// and an accepting audit merges per-task state in task order, so
// Workers: N and Workers: 1 produce bit-identical results.

// normWorkers resolves the Workers option: <= 0 means one worker per
// available CPU.
func normWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// runPool runs n indexed tasks on up to `workers` goroutines. Workers
// pull indexes in increasing order and run(i) stores its own result.
// Cancelling ctx stops workers from pulling further indexes (tasks
// already started run to completion — a task is never interrupted
// midway, so every slot is either fully run or untouched). It returns
// true when every index was handled, false when cancellation left some
// unrun.
func runPool(ctx context.Context, n, workers int, run func(i int)) bool {
	if n == 0 {
		return true
	}
	var next, ran atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < min(workers, n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
				ran.Add(1)
			}
		}()
	}
	wg.Wait()
	return ran.Load() == int64(n)
}

// --- Phase 2: versioned redo across independent objects ---

// redoOutcome is one redo task's failure (a nil outcome means the task
// passed). objIdx is the object-log index where the failure occurred;
// among parallel failures the lowest objIdx wins, which is the failure
// a sequential object-order scan reports. f carries the forensics for
// the failure and rides the same arbitration.
type redoOutcome struct {
	objIdx int
	msg    string
	f      *Forensics
}

// redoFail builds a redo failure with its forensics: the failing object
// log and the 1-based sequence number of the offending entry (0 when
// the failure is not entry-specific).
func redoFail(rep *reports.Reports, objIdx, seq int, check, msg string) *redoOutcome {
	return &redoOutcome{objIdx: objIdx, msg: msg, f: &Forensics{
		Phase:   PhaseRedo,
		Check:   check,
		Object:  rep.Objects[objIdx].String(),
		OpIndex: seq,
	}}
}

// runRedo replays the operation logs into the versioned stores (Phase
// 2, §4.5) on a pool of workers. Logs that feed one store are a single
// task processed in object order — all DB logs build env.vdb, all KV
// logs build env.vkv — while each register log, which is validated but
// builds nothing, is a task of its own. It returns the rejection
// (message + forensics) of the earliest failure in object order (nil
// when every log passed) and whether the phase completed: false means
// ctx was cancelled before every log replayed, in which case even an
// observed failure cannot be arbitrated and the caller must abandon the
// audit without a verdict.
func runRedo(ctx context.Context, env *auditEnv, rep *reports.Reports, workers int, obs hook) (*rejection, bool) {
	var dbObjs, kvObjs []int
	var tasks []func() *redoOutcome
	for i, objID := range rep.Objects {
		switch objID.Kind {
		case reports.DBObj:
			env.dbLogIdx = i
			dbObjs = append(dbObjs, i)
		case reports.KVObj:
			kvObjs = append(kvObjs, i)
		case reports.RegisterObj:
			tasks = append(tasks, func() *redoOutcome {
				o := redoRegisterLog(rep, i)
				obs.opsReplayed(len(rep.OpLogs[i]))
				return o
			})
		default:
			tasks = append(tasks, func() *redoOutcome {
				return redoFail(rep, i, 0, "unknown-object", fmt.Sprintf("unknown object kind %v", objID.Kind))
			})
		}
	}
	if len(dbObjs) > 0 {
		tasks = append(tasks, func() *redoOutcome {
			o := redoDBLogs(env, rep, dbObjs)
			for _, i := range dbObjs {
				obs.opsReplayed(len(rep.OpLogs[i]))
			}
			return o
		})
	}
	if len(kvObjs) > 0 {
		tasks = append(tasks, func() *redoOutcome {
			o := redoKVLogs(env, rep, kvObjs)
			for _, i := range kvObjs {
				obs.opsReplayed(len(rep.OpLogs[i]))
			}
			return o
		})
	}
	obs.phaseStart(PhaseRedo, len(rep.Objects))
	outcomes := make([]*redoOutcome, len(tasks))
	completed := runPool(ctx, len(tasks), workers, func(i int) { outcomes[i] = tasks[i]() })
	if !completed {
		return nil, false
	}
	var first *redoOutcome
	for _, o := range outcomes {
		if o != nil && (first == nil || o.objIdx < first.objIdx) {
			first = o
		}
	}
	if first != nil {
		return &rejection{msg: first.msg, f: first.f}, true
	}
	return nil, true
}

// redoDBLogs replays the DB operation logs into the versioned database.
// Only this task touches env.vdb (including its RedoTxns/RedoQueries
// counters), so the build needs no locking.
func redoDBLogs(env *auditEnv, rep *reports.Reports, objs []int) *redoOutcome {
	for _, i := range objs {
		for j, e := range rep.OpLogs[i] {
			if e.Type != lang.DBOp {
				return redoFail(rep, i, j+1, "log-shape", fmt.Sprintf("non-DB op in DB log at %d", j))
			}
			if !e.OK {
				continue // aborted transaction: no state effect
			}
			if err := env.vdb.ApplyTxn(int64(j+1), e.Stmts); err != nil {
				return redoFail(rep, i, j+1, "redo-apply", "versioned redo failed: "+err.Error())
			}
		}
	}
	return nil
}

// redoKVLogs replays the KV operation logs into the versioned KV store;
// only this task touches env.vkv.
func redoKVLogs(env *auditEnv, rep *reports.Reports, objs []int) *redoOutcome {
	for _, i := range objs {
		for j, e := range rep.OpLogs[i] {
			switch e.Type {
			case lang.KvSet:
				v, derr := lang.DecodeValue(e.Value)
				if derr != nil {
					return redoFail(rep, i, j+1, "undecodable-write", fmt.Sprintf("undecodable KV write at %d: %v", j, derr))
				}
				env.vkv.AddSet(e.Key, int64(j+1), v)
			case lang.KvGet:
				// reads contribute nothing to the build
			default:
				return redoFail(rep, i, j+1, "log-shape", fmt.Sprintf("non-KV op in KV log at %d", j))
			}
		}
	}
	return nil
}

// redoRegisterLog validates one register log. Registers are simulated
// from the log itself at re-execution time, so this pass only checks
// well-formedness.
func redoRegisterLog(rep *reports.Reports, i int) *redoOutcome {
	objID := rep.Objects[i]
	for j, e := range rep.OpLogs[i] {
		if e.Type != lang.RegisterRead && e.Type != lang.RegisterWrite {
			return redoFail(rep, i, j+1, "log-shape", fmt.Sprintf("non-register op in register log at %d", j))
		}
		if e.Key != objID.Name {
			return redoFail(rep, i, j+1, "register-key", fmt.Sprintf("register log %v entry %d names key %q", objID, j, e.Key))
		}
		// A write the verifier cannot decode can never match an honest
		// re-executed write, and if it were the register's LAST write it
		// would silently chain a stale value into the next period's
		// trusted snapshot via finalRegisters. Reject it here, symmetric
		// with the KV log validation.
		if e.Type == lang.RegisterWrite {
			if _, derr := lang.DecodeValue(e.Value); derr != nil {
				return redoFail(rep, i, j+1, "undecodable-write", fmt.Sprintf("undecodable register write in log %v entry %d: %v", objID, j, derr))
			}
		}
	}
	return nil
}

// --- Phase 3: grouped re-execution on a worker pool ---

// groupTask is one (tag, chunk) batch of a control-flow group. chunk is
// the batch's ordinal within its group — forensics name it so an
// operator can locate the failing batch of a large group.
type groupTask struct {
	tag    uint64
	script string
	rids   []string
	chunk  int
}

// buildGroupTasks flattens SortGroups into MaxGroup-sized batches in
// the canonical (tag, chunk) order — the order a sequential audit runs
// them in, and the order in which parallel failures are arbitrated.
func buildGroupTasks(rep *reports.Reports, maxGroup int) []groupTask {
	var tasks []groupTask
	for _, tag := range rep.SortGroups() {
		rids := dedupeRIDs(rep.Groups[tag])
		script := rep.Scripts[tag]
		for chunk := 0; chunk < len(rids); chunk += maxGroup {
			end := min(chunk+maxGroup, len(rids))
			tasks = append(tasks, groupTask{tag: tag, script: script, rids: rids[chunk:end], chunk: chunk / maxGroup})
		}
	}
	return tasks
}

// packGroupTasks coalesces consecutive runs of small same-script tasks
// into packs — each pack is a slice of task indices one worker runs
// back to back sharing a lang.Session, so a workload dominated by tiny
// control-flow groups does not pay a cold activation (fresh frame and
// lane-slice pools) per group. A task joins the current pack only if
// it is contiguous with it in canonical (tag, chunk) order, names the
// same script (same compiled function set, so pooled frames fit), and
// holds fewer than threshold rids; a pack's combined rid count is
// capped at maxGroup so packing never coarsens worker granularity
// beyond what one full-size batch already costs. Every other task
// forms a singleton pack. Concatenating the packs always reproduces
// 0..len(tasks)-1 exactly — packing permutes nothing, so outcome
// arbitration and the caller's task-order scan are untouched.
func packGroupTasks(tasks []groupTask, threshold, maxGroup int) [][]int {
	packs := make([][]int, 0, len(tasks))
	for i := 0; i < len(tasks); {
		if threshold <= 0 || len(tasks[i].rids) >= threshold {
			packs = append(packs, []int{i})
			i++
			continue
		}
		j := i + 1
		total := len(tasks[i].rids)
		for j < len(tasks) && tasks[j].script == tasks[i].script &&
			len(tasks[j].rids) < threshold && total+len(tasks[j].rids) <= maxGroup {
			total += len(tasks[j].rids)
			j++
		}
		pack := make([]int, j-i)
		for k := range pack {
			pack[k] = i + k
		}
		packs = append(packs, pack)
		i = j
	}
	return packs
}

// groupOutcome is the result of one group task. produced and stats are
// task-local and merged in task order afterwards, so the accumulated
// audit state never depends on worker scheduling.
type groupOutcome struct {
	rej      *rejection // non-nil: verification reject (message + forensics)
	err      error      // non-nil: internal fault
	produced map[string]bool
	stats    Stats
	skipped  bool
}

// runGroupTasks executes the group tasks on a pool of workers. Workers
// pull tasks in order; once any task fails, tasks ordered after the
// earliest known failure are skipped — group re-execution is
// side-effect-free on shared audit state, so a task's outcome is a
// deterministic function of the task alone, and the first failure in
// task order decides the verdict exactly as in a sequential audit.
// Every task ordered at or before that failure is guaranteed to run.
//
// Cancelling ctx stops workers from pulling further tasks; slots never
// run stay nil. The caller scans outcomes in task order and abandons
// the audit at the first nil, which preserves determinism: a verdict is
// published only when every task ordered before its deciding outcome
// actually ran.
func runGroupTasks(ctx context.Context, prog *lang.Program, env *auditEnv, tasks []groupTask,
	inputs map[string]trace.Input, responses map[string]string,
	opts Options, workers int, obs hook) []*groupOutcome {

	outcomes := make([]*groupOutcome, len(tasks))
	var failedAt atomic.Int64
	failedAt.Store(int64(len(tasks)))
	// Workers pull packs, not tasks; packs are contiguous index runs in
	// canonical order, so pack order is task order and the arbitration
	// below is unchanged — it always operates on original task indices.
	packs := packGroupTasks(tasks, opts.SmallGroup, opts.MaxGroup)
	runPool(ctx, len(packs), workers, func(p int) {
		var ses *lang.Session
		if len(packs[p]) > 1 {
			ses = lang.NewSession()
		}
		for _, i := range packs[p] {
			if int64(i) > failedAt.Load() {
				// A task ordered strictly before this one already failed, so
				// this task can no longer affect the verdict. (failedAt only
				// ever decreases.)
				outcomes[i] = &groupOutcome{skipped: true}
				continue
			}
			out := &groupOutcome{produced: make(map[string]bool, len(tasks[i].rids))}
			out.rej, out.err = runGroup(prog, env, tasks[i].script, tasks[i].tag, tasks[i].rids,
				inputs, responses, out.produced, opts, ses, &out.stats)
			if out.rej != nil {
				out.rej.f.Chunk = tasks[i].chunk
			}
			outcomes[i] = out
			if out.rej != nil || out.err != nil {
				for {
					cur := failedAt.Load()
					if int64(i) >= cur || failedAt.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
			} else {
				obs.groupReexecuted(tasks[i].script, tasks[i].tag, len(tasks[i].rids))
			}
		}
	})
	return outcomes
}

// mergeStats folds one task-local Stats into the audit-wide Stats.
// Phase timings are owned by Audit itself and are not merged here.
func mergeStats(dst, src *Stats) {
	dst.DedupHits += src.DedupHits
	dst.DedupMisses += src.DedupMisses
	dst.InstrUni += src.InstrUni
	dst.InstrMulti += src.InstrMulti
	dst.Groups = append(dst.Groups, src.Groups...)
	dst.FallbackRequests += src.FallbackRequests
}
