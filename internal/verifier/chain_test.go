package verifier

import (
	"testing"

	"orochi/internal/trace"
)

// TestAuditPeriodChaining exercises §4.1/§4.5: contiguous audit periods
// chain — the verifier derives period N+1's initial object state from
// period N's accepted audit, without ever asking the server for state.
func TestAuditPeriodChaining(t *testing.T) {
	prog := compileApp(t)
	srv := newServerForTest(t, prog)
	if err := srv.Setup(testSchema); err != nil {
		t.Fatal(err)
	}
	initState := srv.Snapshot()

	// Period 1: create posts, vote, accumulate sessions and APC state.
	period1 := []trace.Input{
		{Script: "post", Post: map[string]string{"title": "first"}},
		{Script: "post", Post: map[string]string{"title": "second"}},
		{Script: "vote", Get: map[string]string{"id": "1"}},
		{Script: "visit", Cookie: map[string]string{"user": "alice"}},
		{Script: "visit", Cookie: map[string]string{"user": "alice"}},
		{Script: "now"},
	}
	srv.ServeAll(period1, 3)
	res1, err := Audit(prog, srv.Trace(), srv.Reports(), initState, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Accepted {
		t.Fatalf("period 1 rejected: %s", res1.Reason)
	}
	chained, err := res1.FinalSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// The server keeps running into period 2 with its live state; the
	// verifier will audit period 2 against the state it derived itself.
	srv.NewPeriod()
	period2 := []trace.Input{
		{Script: "visit", Cookie: map[string]string{"user": "alice"}}, // continues her count
		{Script: "vote", Get: map[string]string{"id": "1"}},           // sees period-1 votes
		{Script: "list"},
		{Script: "post", Post: map[string]string{"title": "third"}}, // id continues from autoinc
	}
	srv.ServeAll(period2, 2)
	tr2 := srv.Trace()
	res2, err := Audit(prog, tr2, srv.Reports(), chained, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Accepted {
		t.Fatalf("period 2 rejected: %s", res2.Reason)
	}

	// Sanity: period 2 actually depended on period-1 state — alice's
	// third visit must say "visit 3" and the list must show all posts.
	sawVisit3, sawThird := false, false
	for _, ev := range tr2.Events {
		if ev.Kind != trace.Response {
			continue
		}
		if contains(ev.Body, "visit 3") {
			sawVisit3 = true
		}
		if contains(ev.Body, "created post 3") {
			sawThird = true
		}
	}
	if !sawVisit3 {
		t.Fatal("alice's session did not carry across periods")
	}
	if !sawThird {
		t.Fatal("auto-increment did not carry across periods")
	}
}

// TestChainedSnapshotRejectedIfStale: feeding the wrong initial state
// (period 1's start instead of its end) must fail period 2's audit.
func TestChainedSnapshotRejectedIfStale(t *testing.T) {
	prog := compileApp(t)
	srv := newServerForTest(t, prog)
	if err := srv.Setup(testSchema); err != nil {
		t.Fatal(err)
	}
	initState := srv.Snapshot()
	srv.ServeAll([]trace.Input{
		{Script: "post", Post: map[string]string{"title": "x"}},
		{Script: "visit", Cookie: map[string]string{"user": "bob"}},
	}, 1)
	res1, err := Audit(prog, srv.Trace(), srv.Reports(), initState, Options{})
	if err != nil || !res1.Accepted {
		t.Fatalf("period 1: %v %v", err, res1)
	}
	srv.NewPeriod()
	srv.ServeAll([]trace.Input{
		{Script: "visit", Cookie: map[string]string{"user": "bob"}}, // visit 2 online
		{Script: "list"}, // shows 1 post online
	}, 1)
	// Audit period 2 against the STALE (empty) state.
	res2, err := Audit(prog, srv.Trace(), srv.Reports(), initState, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Accepted {
		t.Fatal("stale initial state must make period 2 outputs irreproducible")
	}
}

func TestFinalSnapshotOnRejected(t *testing.T) {
	res := &Result{Accepted: false}
	if _, err := res.FinalSnapshot(); err == nil {
		t.Fatal("FinalSnapshot must fail on rejected audits")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
