package verifier

import (
	"strings"
	"testing"

	"orochi/internal/lang"
	"orochi/internal/server"
	"orochi/internal/trace"
)

// Tests for audit completeness over faulted requests: error responses
// are recorded, re-executed as error groups, and verified end to end.

// faultApp mixes healthy handlers with ones that fault in different
// ways, including after issuing state operations.
var faultApp = map[string]string{
	"ok": `
$n = intval($_GET["n"]);
echo "ok " . ($n * 2);
`,
	"boom": `nosuchfn();`,
	"latefault": `
session_set("mark", "set");
$x = session_get("mark");
echo "before ";
nosuchfn();
echo "never";
`,
	"badsql": `
$rows = db_query("SELECT * FROM nowhere");
foreach ($rows as $row) { echo "row"; }
echo "done";
`,
	"divzero": `
$d = intval($_GET["d"]);
echo 10 / $d;
`,
	"readmark": `
if (session_get("mark") === "set") {
  nosuchfn();
} else {
  echo "no mark";
}
`,
	"strset": `$s = "ab"; $s[0] = "x"; echo $s;`,
}

func compileFaultApp(t *testing.T) *lang.Program {
	t.Helper()
	prog, err := lang.Compile(faultApp)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// serveFaultMix serves a period mixing successful and faulted requests
// (runtime fault, post-state-op fault, unknown script) and returns the
// artifacts.
func serveFaultMix(t *testing.T, prog *lang.Program) *server.Server {
	t.Helper()
	srv := server.New(prog, server.Options{Record: true})
	inputs := []trace.Input{
		{Script: "ok", Get: map[string]string{"n": "3"}},
		{Script: "boom"},
		{Script: "ok", Get: map[string]string{"n": "4"}},
		{Script: "boom"},
		{Script: "latefault"},
		{Script: "nosuchscript"},
		{Script: "divzero", Get: map[string]string{"d": "0"}},
		{Script: "divzero", Get: map[string]string{"d": "2"}},
		{Script: "strset"},
		{Script: "strset"},
	}
	srv.ServeAll(inputs, 2)
	return srv
}

func TestFaultMixAccepts(t *testing.T) {
	prog := compileFaultApp(t)
	srv := serveFaultMix(t, prog)
	snap := srv.Snapshot()
	_ = snap
	res, err := Audit(prog, srv.Trace(), srv.Reports(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("honest mixed period must accept, got: %s", res.Reason)
	}
	// Every request — including the faulted ones — was replayed.
	if res.Stats.RequestsReplayed != 10 {
		t.Fatalf("replayed %d requests, want 10", res.Stats.RequestsReplayed)
	}
	// The two identical boom requests share one (deduplicated) error
	// group: re-execution ran them as a single two-lane group.
	rep := srv.Reports()
	tags := 0
	for _, rids := range rep.Groups {
		if len(rids) == 2 {
			tags++
		}
	}
	if tags == 0 {
		t.Fatal("identical faulted requests were not grouped together")
	}
}

func TestFaultMixOOOAccepts(t *testing.T) {
	// The Appendix A out-of-order audit covers faulted requests too.
	prog := compileFaultApp(t)
	srv := serveFaultMix(t, prog)
	res, err := OOOAudit(prog, srv.Trace(), srv.Reports(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("OOO audit of honest mixed period must accept, got: %s", res.Reason)
	}
}

func TestFaultAfterStateOpsRecordsPartialM(t *testing.T) {
	// A handler that issues state operations before faulting records a
	// partial op count, and the redo pass applies its writes — the fault
	// does not roll back shared-object effects.
	prog := compileFaultApp(t)
	srv := server.New(prog, server.Options{Record: true})
	rid, body := srv.Handle(trace.Input{Script: "latefault"})
	if !strings.HasPrefix(body, "HTTP 500") {
		t.Fatalf("body = %q", body)
	}
	rep := srv.Reports()
	if got := rep.OpCounts[rid]; got != 2 {
		t.Fatalf("M(%s) = %d, want 2 (session_set + session_get before the fault)", rid, got)
	}
	res, err := Audit(prog, srv.Trace(), rep, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("accept expected, got: %s", res.Reason)
	}
	snap, err := res.FinalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Registers["mark"]; !ok || lang.ToString(v) != "set" {
		t.Fatalf("final snapshot lost the pre-fault register write: %v", snap.Registers)
	}
}

func TestForgedErrorGroupRejected(t *testing.T) {
	// Relocating a successful request into an error group must reject:
	// its traced response cannot equal the canonical fault rendering.
	prog := compileFaultApp(t)
	srv := server.New(prog, server.Options{Record: true})
	srv.Handle(trace.Input{Script: "ok", Get: map[string]string{"n": "3"}})
	srv.Handle(trace.Input{Script: "boom"})
	rep := srv.Reports().Clone()
	// Find the two groups and merge the ok request into the boom group.
	var okTag, boomTag uint64
	for tag, script := range rep.Scripts {
		if script == "ok" {
			okTag = tag
		} else {
			boomTag = tag
		}
	}
	rep.Groups[boomTag] = append(rep.Groups[boomTag], rep.Groups[okTag]...)
	delete(rep.Groups, okTag)
	delete(rep.Scripts, okTag)
	res, err := Audit(prog, srv.Trace(), rep, srv.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("successful request forged into an error group must reject")
	}
}

func TestRelocatedFaultSiteRejected(t *testing.T) {
	// Claiming a faulted request belongs to a group of a DIFFERENT fault
	// site must reject: re-execution faults somewhere else, so the
	// rendering cannot match the traced response.
	prog := compileFaultApp(t)
	srv := server.New(prog, server.Options{Record: true})
	srv.Handle(trace.Input{Script: "boom"})
	srv.Handle(trace.Input{Script: "badsql"})
	rep := srv.Reports().Clone()
	var boomTag, sqlTag uint64
	for tag, script := range rep.Scripts {
		if script == "boom" {
			boomTag = tag
		} else {
			sqlTag = tag
		}
	}
	// Move the boom request into the badsql group: the executor alleges
	// it faulted at the badsql site.
	rep.Groups[sqlTag] = append(rep.Groups[sqlTag], rep.Groups[boomTag]...)
	delete(rep.Groups, boomTag)
	delete(rep.Scripts, boomTag)
	res, err := Audit(prog, srv.Trace(), rep, srv.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("fault relocated to a different site must reject")
	}
}

func TestForgedUnknownScriptDenialRejected(t *testing.T) {
	// The denial attack: the executor skips executing a request to a
	// VALID script, serves the canonical fault of a nonexistent script,
	// and groups the rid under that script name. Re-execution would
	// faithfully reproduce the forged fault, so runGroup must reject on
	// the trace's script instead.
	prog := compileFaultApp(t)
	rt := &lang.RuntimeError{Msg: `unknown script "zzz"`}
	srv := server.New(prog, server.Options{Record: true, TamperResponse: func(rid, body string) string {
		return lang.RenderFault(rt)
	}})
	rid, body := srv.Handle(trace.Input{Script: "ok", Get: map[string]string{"n": "3"}})
	if !strings.HasPrefix(body, "HTTP 500") {
		t.Fatalf("tamper did not fire: %q", body)
	}
	rep := srv.Reports().Clone()
	// Rewrite the reports the way the malicious executor would: the rid
	// moves into an error group for the bogus script with M = 0.
	d := lang.NewDigest("zzz")
	d.Fault(rt.Line, rt.Msg)
	rep.Groups = map[uint64][]string{d.Sum(): {rid}}
	rep.Scripts = map[uint64]string{d.Sum(): "zzz"}
	rep.OpCounts = map[string]int{rid: 0}
	res, err := Audit(prog, srv.Trace(), rep, srv.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("forged unknown-script denial must be rejected")
	}
	if !strings.Contains(res.Reason, "arrived for") {
		t.Logf("reason: %s", res.Reason)
	}
}

func TestTamperedFaultSiteRejected(t *testing.T) {
	// Editing only the fault site in the served error body must reject:
	// the rendering is canonical, and re-execution derives the true
	// site.
	prog := compileFaultApp(t)
	srv := server.New(prog, server.Options{Record: true, TamperResponse: func(rid, body string) string {
		return strings.Replace(body, "line 1", "line 7", 1)
	}})
	_, body := srv.Handle(trace.Input{Script: "boom"})
	if !strings.Contains(body, "line 7") {
		t.Fatalf("tamper did not fire: %q", body)
	}
	res, err := Audit(prog, srv.Trace(), srv.Reports(), srv.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("relocated fault site in the response must be rejected")
	}
}

func TestPerLaneFaultDivergenceRejected(t *testing.T) {
	// A group whose lanes fault differently (one divides by zero, the
	// other does not) is divergence: the grouping report lied.
	prog := compileFaultApp(t)
	srv := server.New(prog, server.Options{Record: true})
	srv.Handle(trace.Input{Script: "divzero", Get: map[string]string{"d": "0"}})
	srv.Handle(trace.Input{Script: "divzero", Get: map[string]string{"d": "2"}})
	rep := srv.Reports().Clone()
	if len(rep.Groups) != 2 {
		t.Fatalf("expected 2 groups (one faulted, one not), got %d", len(rep.Groups))
	}
	// Merge both requests into a single alleged group.
	var all []string
	var keep uint64
	for tag, rids := range rep.Groups {
		all = append(all, rids...)
		keep = tag
	}
	rep.Groups = map[uint64][]string{keep: all}
	rep.Scripts = map[uint64]string{keep: "divzero"}
	res, err := Audit(prog, srv.Trace(), rep, srv.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("mixed fault/success lanes in one group must reject")
	}
}

func TestUndecodableRegisterWriteRejected(t *testing.T) {
	// Phase 2 must reject a register write the verifier cannot decode;
	// otherwise, when it is the register's last write, finalRegisters
	// would silently chain a stale value into the next epoch's trusted
	// snapshot under a clean ACCEPT.
	prog := compileFaultApp(t)
	srv := server.New(prog, server.Options{Record: true})
	srv.Handle(trace.Input{Script: "latefault"})
	rep := srv.Reports().Clone()
	tampered := false
	for i := range rep.OpLogs {
		for j := range rep.OpLogs[i] {
			if rep.OpLogs[i][j].Type == lang.RegisterWrite {
				rep.OpLogs[i][j].Value = "\x00garbage"
				tampered = true
			}
		}
	}
	if !tampered {
		t.Fatal("no register write found to tamper")
	}
	res, err := Audit(prog, srv.Trace(), rep, srv.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("undecodable register write must be rejected")
	}
	if !strings.Contains(res.Reason, "undecodable register write") {
		t.Fatalf("rejection should name the undecodable write, got: %s", res.Reason)
	}
}

func TestFaultedPeriodChainsSnapshot(t *testing.T) {
	// Two periods: period 1's faulted request wrote a register before
	// faulting; period 2's request branches on that register and faults
	// only when it sees the chained value. The chained snapshot must
	// make period 2 accept, and a stale (empty) snapshot must reject —
	// the fault path itself depends on the §4.1/§4.5 hand-off.
	prog := compileFaultApp(t)
	srv := server.New(prog, server.Options{Record: true})
	srv.Handle(trace.Input{Script: "latefault"})
	tr1, rep1 := srv.Trace(), srv.Reports()
	srv.NewPeriod()
	_, body := srv.Handle(trace.Input{Script: "readmark"})
	if !strings.HasPrefix(body, "HTTP 500") {
		t.Fatalf("period 2 should fault on the inherited register, got %q", body)
	}
	tr2, rep2 := srv.Trace(), srv.Reports()

	res1, err := Audit(prog, tr1, rep1, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Accepted {
		t.Fatalf("period 1: %s", res1.Reason)
	}
	chained, err := res1.FinalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Audit(prog, tr2, rep2, chained, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Accepted {
		t.Fatalf("period 2 under chained state: %s", res2.Reason)
	}
	// Under a stale initial state the branch flips: re-execution
	// completes with "no mark" while the trace says the request faulted.
	res2stale, err := Audit(prog, tr2, rep2, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2stale.Accepted {
		t.Fatal("period 2 accepted under stale initial state")
	}
}
