package verifier

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"orochi/internal/core"
	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/sqlmini"
	"orochi/internal/trace"
	"orochi/internal/vstore"
)

// This file implements OOOAudit from Appendix A of the paper (Fig. 13):
// an audit that re-executes requests *individually*, out of order,
// following an op schedule — a topological sort of the event graph G.
// It is the theoretical bridge between grouped SIMD re-execution and
// physical execution in the correctness proofs (Lemmas 5-8).
//
// In this reproduction it serves three purposes: a differential oracle
// for the production verifier (both must agree on every verdict), the
// ablation baseline that isolates what grouping buys (EXPERIMENTS.md),
// and an executable rendition of the proofs' central construction.
//
// Mechanically, each request runs in its own goroutine in single-lane
// SIMD mode; its bridge blocks before every state operation until the
// scheduler — which walks the topological order of G — hands it the
// turn for that (rid, opnum). This is exactly OOOExec's "run rid up to
// its next event" discipline.

// OOOAudit verifies tr against rep with a background context.
//
// Deprecated: use OOOAuditContext, which supports cancellation.
func OOOAudit(prog *lang.Program, tr *trace.Trace, rep *reports.Reports, init *object.Snapshot) (*Result, error) {
	return OOOAuditContext(context.Background(), prog, tr, rep, init)
}

// OOOAuditContext verifies tr against rep by out-of-order, per-request
// re-execution following a topological sort of the event graph.
// Cancelling ctx abandons the audit between schedule steps with an
// error matching ErrAuditCanceled; leftover request goroutines are
// unblocked by the scheduler's shutdown, and no verdict is produced.
func OOOAuditContext(ctx context.Context, prog *lang.Program, tr *trace.Trace, rep *reports.Reports, init *object.Snapshot) (*Result, error) {
	return OOOAuditContextOpts(ctx, prog, tr, rep, init, Options{})
}

// OOOAuditContextOpts is OOOAuditContext with audit options. Only
// opts.Engine is consulted: the OOO audit is inherently per-request
// (no grouping), so MaxGroup/Workers do not apply.
func OOOAuditContextOpts(ctx context.Context, prog *lang.Program, tr *trace.Trace, rep *reports.Reports, init *object.Snapshot, opts Options) (*Result, error) {
	if ctx.Err() != nil {
		return nil, auditCanceled(ctx)
	}
	start := time.Now()
	res := &Result{}
	reject := func(reason string, f *Forensics) (*Result, error) {
		res.Accepted = false
		res.Reason = reason
		if f == nil {
			f = &Forensics{Phase: PhaseValidation, Check: "unclassified"}
		}
		if f.Detail == "" {
			f.Detail = reason
		}
		res.Forensics = f
		res.Stats.Total = time.Since(start)
		return res, nil
	}
	if init == nil {
		init = object.EmptySnapshot()
	}
	if err := tr.Balanced(); err != nil {
		return reject("unbalanced trace: "+err.Error(),
			&Forensics{Phase: PhaseValidation, Check: "unbalanced-trace"})
	}
	seenObj := make(map[reports.ObjectID]bool, len(rep.Objects))
	for _, o := range rep.Objects {
		if seenObj[o] {
			return reject(fmt.Sprintf("duplicate object %v in reports", o),
				&Forensics{Phase: PhaseValidation, Check: "duplicate-object", Object: o.String()})
		}
		seenObj[o] = true
	}
	proc, err := core.ProcessOpReports(tr, rep)
	if err != nil {
		var rej *core.RejectError
		if errors.As(err, &rej) {
			return reject(rej.Error(), forensicsFromReject(PhaseProcessOpReports, rej))
		}
		return nil, err
	}
	env := &auditEnv{
		rep:       rep,
		opMap:     proc.OpMap,
		vdb:       vstore.NewVersionedDB(),
		vkv:       vstore.NewVersionedKV(),
		dbLogIdx:  -1,
		initRegs:  init.Registers,
		sqlCache:  make(map[string]sqlmini.Stmt),
		convCache: make(map[*sqlmini.Result]lang.Value),
	}
	for _, tbl := range init.Tables {
		if err := env.vdb.LoadInitial(tbl); err != nil {
			return nil, err
		}
	}
	kvKeys := make([]string, 0, len(init.KV))
	for k := range init.KV {
		kvKeys = append(kvKeys, k)
	}
	sort.Strings(kvKeys)
	for _, k := range kvKeys {
		env.vkv.LoadInitial(k, init.KV[k])
	}
	for i, objID := range rep.Objects {
		if objID.Kind != reports.DBObj && objID.Kind != reports.KVObj {
			continue
		}
		for j, e := range rep.OpLogs[i] {
			switch objID.Kind {
			case reports.DBObj:
				if e.Type != lang.DBOp {
					return reject("non-DB op in DB log",
						&Forensics{Phase: PhaseRedo, Check: "log-shape", Object: objID.String(), OpIndex: j + 1})
				}
				if e.OK {
					if err := env.vdb.ApplyTxn(int64(j+1), e.Stmts); err != nil {
						return reject("versioned redo failed: "+err.Error(),
							&Forensics{Phase: PhaseRedo, Check: "redo-apply", Object: objID.String(), OpIndex: j + 1})
					}
				}
			case reports.KVObj:
				if e.Type == lang.KvSet {
					v, derr := lang.DecodeValue(e.Value)
					if derr != nil {
						return reject("undecodable KV write",
							&Forensics{Phase: PhaseRedo, Check: "undecodable-write", Object: objID.String(), OpIndex: j + 1})
					}
					env.vkv.AddSet(e.Key, int64(j+1), v)
				}
			}
		}
	}

	// Build the op schedule: the topological order of G restricted to
	// state-operation nodes; (rid, 0) starts a request lazily and
	// (rid, ∞) collects its output.
	schedule := proc.Graph.TopoOrder()
	if len(schedule) != proc.Graph.NumNodes() {
		return reject("event graph has a cycle",
			&Forensics{Phase: PhaseProcessOpReports, Check: "cycle"})
	}

	inputs := tr.Inputs()
	responses := tr.Responses()
	sched := newOOOScheduler(env, opts.Engine)
	defer sched.shutdown()
	for si, key := range schedule {
		// Operationwise stepping makes the schedule loop the natural
		// cancellation point; check every few steps so a cancelled audit
		// of a long schedule returns promptly without paying ctx.Err()'s
		// cost on every single operation.
		if si&63 == 0 && ctx.Err() != nil {
			return nil, auditCanceled(ctx)
		}
		in, ok := inputs[key.RID]
		if !ok {
			return reject("schedule names unknown request "+key.RID,
				&Forensics{Phase: PhaseReExec, Check: "unknown-request", RequestID: key.RID})
		}
		switch key.Opnum {
		case 0:
			sched.start(prog, key.RID, in)
		case core.OpInf:
			out, runErr := sched.finish(key.RID)
			var fault *lang.RuntimeError
			if runErr != nil {
				var rej *core.RejectError
				if errors.As(runErr, &rej) {
					return reject(rej.Error(), forensicsFromReject(PhaseReExec, rej))
				}
				if !errors.As(runErr, &fault) || out == nil {
					return reject("re-execution failed for "+key.RID+": "+runErr.Error(),
						&Forensics{Phase: PhaseReExec, Check: "runtime-error", RequestID: key.RID, Script: in.Script})
				}
				// A faulted request: audit its canonical error response
				// below, exactly as the grouped verifier does.
			}
			if out.OpCount != rep.OpCounts[key.RID] {
				return reject(fmt.Sprintf("request %s issued %d ops, M says %d",
					key.RID, out.OpCount, rep.OpCounts[key.RID]),
					&Forensics{Phase: PhaseReExec, Check: "op-count", RequestID: key.RID, Script: in.Script,
						OpsReported: rep.OpCounts[key.RID], OpsReplayed: out.OpCount})
			}
			if fault != nil {
				if responses[key.RID] != lang.RenderFault(fault) {
					return reject("error output mismatch for "+key.RID,
						&Forensics{Phase: PhaseReExec, Check: "error-output-mismatch", RequestID: key.RID, Script: in.Script,
							Diff: diffResponses(responses[key.RID], lang.RenderFault(fault))})
				}
			} else if !out.OutputEqual(0, responses[key.RID]) {
				return reject("output mismatch for "+key.RID,
					&Forensics{Phase: PhaseReExec, Check: "output-mismatch", RequestID: key.RID, Script: in.Script,
						Diff: diffResponses(responses[key.RID], out.Output(0))})
			}
			res.Stats.RequestsReplayed++
		default:
			if err := sched.step(key.RID); err != nil {
				var rej *core.RejectError
				if errors.As(err, &rej) {
					return reject(rej.Error(), forensicsFromReject(PhaseReExec, rej))
				}
				return reject("re-execution failed for "+key.RID+": "+err.Error(),
					&Forensics{Phase: PhaseReExec, Check: "runtime-error", RequestID: key.RID, Script: in.Script})
			}
		}
	}
	res.Stats.Total = time.Since(start)
	res.Stats.ReExec = res.Stats.Total
	res.Accepted = true
	res.FinalDB = env.vdb
	return res, nil
}

// oooScheduler single-steps request goroutines through their state ops.
type oooScheduler struct {
	env    *auditEnv
	engine lang.Engine
	reqs   map[string]*oooRequest
}

type oooRequest struct {
	// turn receives permission to run one state op; opDone is signalled
	// after the op completes (or the run ends).
	turn   chan struct{}
	done   chan struct{} // closed when the goroutine exits
	result *lang.Result
	err    error
}

func newOOOScheduler(env *auditEnv, engine lang.Engine) *oooScheduler {
	return &oooScheduler{env: env, engine: engine, reqs: make(map[string]*oooRequest)}
}

// start launches the request's goroutine; it runs until its first state
// op (where its bridge blocks) or to completion.
func (s *oooScheduler) start(prog *lang.Program, rid string, in trace.Input) {
	r := &oooRequest{
		turn: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.reqs[rid] = r
	bridge := &oooBridge{
		inner: newAuditBridge(s.env),
		turn:  r.turn,
	}
	go func() {
		defer close(r.done)
		r.result, r.err = lang.Run(prog, lang.Config{
			Mode:   lang.ModeSIMD,
			Script: in.Script,
			RIDs:   []string{rid},
			Inputs: []lang.RequestInput{{Get: in.Get, Post: in.Post, Cookie: in.Cookie}},
			Bridge: bridge,
			Engine: s.engine,
		})
	}()
}

// step grants the request one state operation. If the request finishes
// (or errors) instead of issuing an op, the mismatch surfaces here or at
// finish.
func (s *oooScheduler) step(rid string) error {
	r, ok := s.reqs[rid]
	if !ok {
		return fmt.Errorf("step for unstarted request %s", rid)
	}
	select {
	case r.turn <- struct{}{}:
		return nil
	case <-r.done:
		// The request ended before issuing the scheduled op: fewer ops
		// than the reports claimed.
		if r.err != nil {
			return r.err
		}
		return &core.RejectError{Stage: "ooo", RID: rid, Msg: fmt.Sprintf(
			"request %s finished before scheduled operation", rid)}
	}
}

// finish waits for the request's goroutine and returns its result.
func (s *oooScheduler) finish(rid string) (*lang.Result, error) {
	r, ok := s.reqs[rid]
	if !ok {
		return nil, fmt.Errorf("finish for unstarted request %s", rid)
	}
	// Allow a request that issues no further ops to run to completion;
	// if it (incorrectly) wants more ops than scheduled, feeding it here
	// would be wrong — but such a request would have failed CheckOp
	// (its (rid,opnum) is not in the OpMap), which unblocks it with an
	// error. So just drain turns until the goroutine exits.
	for {
		select {
		case r.turn <- struct{}{}:
			continue
		case <-r.done:
			delete(s.reqs, rid)
			return r.result, r.err
		}
	}
}

// shutdown unblocks any leftover goroutines (reject paths).
func (s *oooScheduler) shutdown() {
	for _, r := range s.reqs {
		for {
			select {
			case r.turn <- struct{}{}:
				continue
			case <-r.done:
			}
			break
		}
	}
}

// oooBridge wraps the audit bridge, blocking before every state op until
// the scheduler grants the turn (operationwise execution, §A.1).
type oooBridge struct {
	inner *auditBridge
	turn  chan struct{}
}

func (b *oooBridge) await() { <-b.turn }

func (b *oooBridge) RegisterRead(rid string, opnum int, name string) (lang.Value, error) {
	b.await()
	return b.inner.RegisterRead(rid, opnum, name)
}
func (b *oooBridge) RegisterWrite(rid string, opnum int, name string, v lang.Value) error {
	b.await()
	return b.inner.RegisterWrite(rid, opnum, name, v)
}
func (b *oooBridge) KvGet(rid string, opnum int, key string) (lang.Value, error) {
	b.await()
	return b.inner.KvGet(rid, opnum, key)
}
func (b *oooBridge) KvSet(rid string, opnum int, key string, v lang.Value) error {
	b.await()
	return b.inner.KvSet(rid, opnum, key, v)
}
func (b *oooBridge) DBOp(rid string, opnum int, stmts []string) (lang.Value, error) {
	b.await()
	return b.inner.DBOp(rid, opnum, stmts)
}
func (b *oooBridge) NonDet(rid string, fn string, args []lang.Value) (lang.Value, error) {
	// Nondeterminism is not a shared-object op; no turn needed.
	return b.inner.NonDet(rid, fn, args)
}

var _ lang.Bridge = (*oooBridge)(nil)
