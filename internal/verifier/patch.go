package verifier

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"orochi/internal/core"
	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/sqlmini"
	"orochi/internal/trace"
	"orochi/internal/vstore"
)

// Patch-based auditing (§7, following Poirot [53]): replay an already-
// audited period against a *patched* program and report which responses
// would have differed. Unlike Poirot, the replay machinery here is the
// same untrusted-report machinery as the audit itself, so the patch
// audit covers the stack the audit covers.
//
// Requests are replayed individually. Reads are fed from the versioned
// stores at the timestamps the original execution's logs pin down; a
// patched program whose state-operation sequence deviates from the
// original's (different write SQL, more operations than were logged,
// different objects) cannot be faithfully simulated from the logs, so
// such requests are classified Inconclusive rather than guessed at.

// PatchClass classifies one request's behaviour under the patch.
type PatchClass uint8

const (
	// PatchUnchanged: the patched program reproduces the original
	// response byte-for-byte.
	PatchUnchanged PatchClass = iota
	// PatchChanged: replay succeeded but the response differs.
	PatchChanged
	// PatchInconclusive: the patched execution departed from the logged
	// operation sequence, so its behaviour cannot be derived from the
	// recorded reports alone.
	PatchInconclusive
)

func (c PatchClass) String() string {
	switch c {
	case PatchUnchanged:
		return "unchanged"
	case PatchChanged:
		return "changed"
	case PatchInconclusive:
		return "inconclusive"
	default:
		return "patchclass(?)"
	}
}

// PatchResult summarizes a patch audit.
type PatchResult struct {
	// Classes maps requestID -> classification.
	Classes map[string]PatchClass
	// Unchanged, Changed and Inconclusive count the classes.
	Unchanged, Changed, Inconclusive int
}

// RIDsIn returns the requestIDs with the given class, sorted.
func (r *PatchResult) RIDsIn(c PatchClass) []string {
	var out []string
	for rid, cl := range r.Classes {
		if cl == c {
			out = append(out, rid)
		}
	}
	sort.Strings(out)
	return out
}

// PatchAudit replays the recorded period under the patched program with
// a background context.
//
// Deprecated: use PatchAuditContext, which supports cancellation.
func PatchAudit(patched *lang.Program, tr *trace.Trace, rep *reports.Reports, init *object.Snapshot) (*PatchResult, error) {
	return PatchAuditContext(context.Background(), patched, tr, rep, init)
}

// PatchAuditContext replays the recorded period under the patched
// program. The reports must come from an execution that a regular Audit
// (under the original program) accepted; the patch audit revalidates
// their structure but not the original outputs. Cancelling ctx abandons
// the replay between requests with an error matching ErrAuditCanceled
// and no (partial) classification.
func PatchAuditContext(ctx context.Context, patched *lang.Program, tr *trace.Trace, rep *reports.Reports, init *object.Snapshot) (*PatchResult, error) {
	return PatchAuditContextOpts(ctx, patched, tr, rep, init, Options{})
}

// PatchAuditContextOpts is PatchAuditContext with audit options. Only
// opts.Engine is consulted: the patch replay is per-request, so
// MaxGroup/Workers do not apply.
func PatchAuditContextOpts(ctx context.Context, patched *lang.Program, tr *trace.Trace, rep *reports.Reports, init *object.Snapshot, opts Options) (*PatchResult, error) {
	if ctx.Err() != nil {
		return nil, auditCanceled(ctx)
	}
	if init == nil {
		init = object.EmptySnapshot()
	}
	if err := tr.Balanced(); err != nil {
		return nil, fmt.Errorf("verifier: patch audit: %w", err)
	}
	proc, err := core.ProcessOpReports(tr, rep)
	if err != nil {
		return nil, fmt.Errorf("verifier: patch audit: reports unusable: %w", err)
	}
	env := &auditEnv{
		rep:       rep,
		opMap:     proc.OpMap,
		vdb:       vstore.NewVersionedDB(),
		vkv:       vstore.NewVersionedKV(),
		dbLogIdx:  -1,
		initRegs:  init.Registers,
		sqlCache:  make(map[string]sqlmini.Stmt),
		convCache: make(map[*sqlmini.Result]lang.Value),
	}
	for _, tbl := range init.Tables {
		if err := env.vdb.LoadInitial(tbl); err != nil {
			return nil, err
		}
	}
	kvKeys := make([]string, 0, len(init.KV))
	for k := range init.KV {
		kvKeys = append(kvKeys, k)
	}
	sort.Strings(kvKeys)
	for _, k := range kvKeys {
		env.vkv.LoadInitial(k, init.KV[k])
	}
	for i, objID := range rep.Objects {
		switch objID.Kind {
		case reports.DBObj:
			for j, e := range rep.OpLogs[i] {
				if e.Type == lang.DBOp && e.OK {
					if err := env.vdb.ApplyTxn(int64(j+1), e.Stmts); err != nil {
						return nil, fmt.Errorf("verifier: patch audit: redo: %w", err)
					}
				}
			}
		case reports.KVObj:
			for j, e := range rep.OpLogs[i] {
				if e.Type == lang.KvSet {
					v, derr := lang.DecodeValue(e.Value)
					if derr != nil {
						return nil, fmt.Errorf("verifier: patch audit: %w", derr)
					}
					env.vkv.AddSet(e.Key, int64(j+1), v)
				}
			}
		}
	}

	out := &PatchResult{Classes: make(map[string]PatchClass)}
	responses := tr.Responses()
	for _, ev := range tr.Requests() {
		if ctx.Err() != nil {
			return nil, auditCanceled(ctx)
		}
		rid := ev.RID
		bridge := &patchBridge{inner: newAuditBridge(env)}
		res, runErr := lang.Run(patched, lang.Config{
			Mode:   lang.ModeSIMD,
			Script: ev.In.Script,
			RIDs:   []string{rid},
			Inputs: []lang.RequestInput{{Get: ev.In.Get, Post: ev.In.Post, Cookie: ev.In.Cookie}},
			Bridge: bridge,
			Engine: opts.Engine,
		})
		var cls PatchClass
		switch {
		case runErr != nil:
			// Departures from the logged op sequence surface as
			// RejectError from CheckOp; anything else (runtime error in
			// the patch) is equally inconclusive.
			cls = PatchInconclusive
			var rej *core.RejectError
			if !errors.As(runErr, &rej) {
				var rt *lang.RuntimeError
				if !errors.As(runErr, &rt) {
					return nil, runErr
				}
			}
		case bridge.deviated:
			cls = PatchInconclusive
		case res.OutputEqual(0, responses[rid]):
			cls = PatchUnchanged
		default:
			cls = PatchChanged
		}
		out.Classes[rid] = cls
		switch cls {
		case PatchUnchanged:
			out.Unchanged++
		case PatchChanged:
			out.Changed++
		default:
			out.Inconclusive++
		}
	}
	return out, nil
}

// patchBridge feeds reads from the recorded history but tolerates the
// patched program's reads differing textually (a patched SELECT runs
// against the versioned DB at the original timestamp). Write deviations
// and extra operations cannot be simulated and mark the request.
type patchBridge struct {
	inner    *auditBridge
	deviated bool
}

// anchor finds the log position for (rid, opnum) without content checks.
func (b *patchBridge) anchor(rid string, opnum int, kind reports.ObjectKind) (core.LogPos, bool) {
	pos, ok := b.inner.env.opMap[core.OpKey{RID: rid, Opnum: opnum}]
	if !ok {
		return core.LogPos{}, false
	}
	if b.inner.env.rep.Objects[pos.Obj].Kind != kind {
		return core.LogPos{}, false
	}
	return pos, true
}

func (b *patchBridge) RegisterRead(rid string, opnum int, name string) (lang.Value, error) {
	pos, ok := b.anchor(rid, opnum, reports.RegisterObj)
	if !ok || b.inner.env.rep.Objects[pos.Obj].Name != name {
		// The patch reads a different register (or reads where the
		// original didn't): the recorded history cannot place the read.
		b.deviated = true
		return nil, nil
	}
	log := b.inner.env.rep.OpLogs[pos.Obj]
	for j := pos.Seq - 2; j >= 0; j-- {
		if log[j].Type == lang.RegisterWrite {
			v, err := lang.DecodeValue(log[j].Value)
			if err != nil {
				b.deviated = true
				return nil, nil
			}
			return v, nil
		}
	}
	if v, ok := b.inner.env.initRegs[name]; ok {
		return lang.CloneValue(v), nil
	}
	return nil, nil
}

func (b *patchBridge) RegisterWrite(rid string, opnum int, name string, v lang.Value) error {
	// A write whose operands match the log is the original behaviour;
	// anything else deviates (its downstream effects are unknowable).
	pos, ok := b.anchor(rid, opnum, reports.RegisterObj)
	if !ok {
		b.deviated = true
		return nil
	}
	e := b.inner.env.rep.OpLogs[pos.Obj][pos.Seq-1]
	if e.Type != lang.RegisterWrite || e.Key != name || e.Value != lang.EncodeValue(v) {
		b.deviated = true
	}
	return nil
}

func (b *patchBridge) KvGet(rid string, opnum int, key string) (lang.Value, error) {
	pos, ok := b.anchor(rid, opnum, reports.KVObj)
	if !ok {
		b.deviated = true
		return nil, nil
	}
	return lang.CloneValue(b.inner.env.vkv.Get(key, int64(pos.Seq))), nil
}

func (b *patchBridge) KvSet(rid string, opnum int, key string, v lang.Value) error {
	pos, ok := b.anchor(rid, opnum, reports.KVObj)
	if !ok {
		b.deviated = true
		return nil
	}
	e := b.inner.env.rep.OpLogs[pos.Obj][pos.Seq-1]
	if e.Type != lang.KvSet || e.Key != key || e.Value != lang.EncodeValue(v) {
		b.deviated = true
	}
	return nil
}

func (b *patchBridge) DBOp(rid string, opnum int, stmts []string) (lang.Value, error) {
	pos, ok := b.anchor(rid, opnum, reports.DBObj)
	if !ok {
		b.deviated = true
		return lang.NewArray(), nil
	}
	e := b.inner.env.rep.OpLogs[pos.Obj][pos.Seq-1]
	if !e.OK {
		return false, nil
	}
	seq := int64(pos.Seq)
	out := lang.NewArray()
	for q, sql := range stmts {
		st, err := b.inner.env.parseSQL(sql)
		if err != nil {
			b.deviated = true
			return lang.NewArray(), nil
		}
		if sqlmini.IsWrite(st) {
			// Writes must match the logged statement exactly; a patched
			// write changes history, which the logs cannot express.
			if q >= len(e.Stmts) || e.Stmts[q] != sql {
				b.deviated = true
				return lang.NewArray(), nil
			}
			r, werr := b.inner.env.vdb.WriteResult(seq, q)
			if werr != nil {
				b.deviated = true
				return lang.NewArray(), nil
			}
			out.Append(b.inner.env.convert(r))
			continue
		}
		sel, isSel := st.(*sqlmini.Select)
		if !isSel {
			b.deviated = true
			return lang.NewArray(), nil
		}
		// Patched SELECTs are fine: run them against the versioned DB at
		// the original operation's timestamp.
		r, qerr := b.inner.cache.QueryParsed(sql, sel, vstore.Ts(seq, q))
		if qerr != nil {
			b.deviated = true
			return lang.NewArray(), nil
		}
		out.Append(b.inner.env.convert(r))
	}
	return out, nil
}

func (b *patchBridge) NonDet(rid string, fn string, args []lang.Value) (lang.Value, error) {
	list := b.inner.env.rep.NonDet[rid]
	i := b.inner.ndPos[rid]
	if i >= len(list) || list[i].Fn != fn {
		b.deviated = true
		return int64(0), nil
	}
	b.inner.ndPos[rid] = i + 1
	v, err := lang.DecodeValue(list[i].Value)
	if err != nil {
		b.deviated = true
		return int64(0), nil
	}
	return v, nil
}

var _ lang.Bridge = (*patchBridge)(nil)
