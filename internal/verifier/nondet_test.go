package verifier

import (
	"strings"
	"testing"

	"orochi/internal/lang"
	"orochi/internal/server"
	"orochi/internal/trace"
)

// Tests for the non-determinism plausibility checks (§4.6) and other
// report-validation edges.

func serveNow(t *testing.T, n int) (*lang.Program, *trace.Trace, *serverArtifacts) {
	t.Helper()
	prog := compileApp(t)
	inputs := make([]trace.Input, n)
	for i := range inputs {
		inputs[i] = trace.Input{Script: "now"}
	}
	tr, art := serveWorkload(t, prog, inputs, 1)
	return prog, tr, art
}

func TestNonDetTimeBackwardsRejected(t *testing.T) {
	// A script with two time() calls; the tampered report makes the
	// second recorded time precede the first.
	prog2, err := lang.Compile(map[string]string{
		"twotimes": `$a = time(); $b = time(); echo ($b >= $a) ? "mono" : "backwards";`,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServerForTest(t, prog2)
	srv.Handle(trace.Input{Script: "twotimes"})
	rep2 := srv.Reports().Clone()
	for rid := range rep2.NonDet {
		if len(rep2.NonDet[rid]) == 2 {
			rep2.NonDet[rid][0].Value = lang.EncodeValue(lang.Value(int64(2_000_000_000)))
			rep2.NonDet[rid][1].Value = lang.EncodeValue(lang.Value(int64(1_000_000_000)))
		}
	}
	res, err := Audit(prog2, srv.Trace(), rep2, srv.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("time going backwards within a request must be rejected")
	}
	if !strings.Contains(res.Reason, "backwards") && !strings.Contains(res.Reason, "output") {
		t.Logf("reason: %s", res.Reason)
	}
}

func TestNonDetFnMismatchRejected(t *testing.T) {
	_, tr, art := serveNow(t, 1)
	rep := art.srv.Reports().Clone()
	for rid := range rep.NonDet {
		for i := range rep.NonDet[rid] {
			if rep.NonDet[rid][i].Fn == "time" {
				rep.NonDet[rid][i].Fn = "mt_rand"
			}
		}
	}
	prog := compileApp(t)
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("nondet function-name mismatch must be rejected")
	}
}

func TestNonDetExhaustionRejected(t *testing.T) {
	_, tr, art := serveNow(t, 1)
	rep := art.srv.Reports().Clone()
	for rid := range rep.NonDet {
		rep.NonDet[rid] = rep.NonDet[rid][:0]
	}
	prog := compileApp(t)
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("missing nondet records must be rejected")
	}
}

func TestNonDetUndecodableRejected(t *testing.T) {
	_, tr, art := serveNow(t, 1)
	rep := art.srv.Reports().Clone()
	for rid := range rep.NonDet {
		for i := range rep.NonDet[rid] {
			rep.NonDet[rid][i].Value = "garbage"
		}
	}
	prog := compileApp(t)
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("undecodable nondet values must be rejected")
	}
}

func TestWrongScriptInGroupRejected(t *testing.T) {
	prog := compileApp(t)
	inputs := []trace.Input{{Script: "list"}}
	tr, art := serveWorkload(t, prog, inputs, 1)
	rep := art.srv.Reports().Clone()
	for tag := range rep.Scripts {
		rep.Scripts[tag] = "now" // claim a different entry point
	}
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("wrong script mapping must be rejected")
	}
}

func TestUnknownScriptInGroupRejected(t *testing.T) {
	prog := compileApp(t)
	inputs := []trace.Input{{Script: "list"}}
	tr, art := serveWorkload(t, prog, inputs, 1)
	rep := art.srv.Reports().Clone()
	for tag := range rep.Scripts {
		rep.Scripts[tag] = "no-such-script"
	}
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("unknown script in group must be rejected")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	// A verifier-side step limit converts runaway re-execution into a
	// rejection rather than a hang.
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, sampleInputs(5), 1)
	res, err := Audit(prog, tr, art.srv.Reports(), art.snap, Options{MaxSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("absurdly low step budget must reject, not hang")
	}
	if !strings.Contains(res.Reason, "step limit") {
		t.Logf("reason: %s", res.Reason)
	}
}

func TestServer500Audits(t *testing.T) {
	// A request whose handler raises a runtime error produces the
	// canonical error response AND a group membership: faulted requests
	// are first-class auditable outcomes, so an honest period containing
	// one ACCEPTs (the §A.1 "programs run to completion" boundary is
	// lifted).
	prog, err := lang.Compile(map[string]string{
		"boom": `nosuchfn();`,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServerForTest(t, prog)
	_, body := srv.Handle(trace.Input{Script: "boom"})
	if !strings.HasPrefix(body, "HTTP 500") {
		t.Fatalf("body = %q", body)
	}
	res, err := Audit(prog, srv.Trace(), srv.Reports(), srv.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("honest faulted request must be accepted, got: %s", res.Reason)
	}
}

func TestServer500TamperedBodyRejected(t *testing.T) {
	// The same faulted request with the error body edited on the wire: a
	// tampered error response must still REJECT (soundness is preserved
	// by re-deriving the canonical rendering during re-execution).
	prog, err := lang.Compile(map[string]string{
		"boom": `nosuchfn();`,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(prog, server.Options{Record: true, TamperResponse: func(rid, body string) string {
		return strings.Replace(body, "nosuchfn", "harmless", 1)
	}})
	_, body := srv.Handle(trace.Input{Script: "boom"})
	if !strings.HasPrefix(body, "HTTP 500") {
		t.Fatalf("body = %q", body)
	}
	res, err := Audit(prog, srv.Trace(), srv.Reports(), srv.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("tampered error body must be rejected")
	}
}

func TestVerdictDeterminism(t *testing.T) {
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, sampleInputs(20), 4)
	r1, err := Audit(prog, tr, art.srv.Reports(), art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Audit(prog, tr, art.srv.Reports(), art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Accepted != r2.Accepted {
		t.Fatal("audit verdict must be deterministic")
	}
}

// newServerForTest builds a recording server for a custom program.
func newServerForTest(t *testing.T, prog *lang.Program) *server.Server {
	t.Helper()
	return server.New(prog, server.Options{Record: true})
}
