package verifier

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"orochi/internal/workload"
)

// These tests pin the cancellation contract of the context-aware audit:
// cancelling at ANY point yields either an error matching
// ErrAuditCanceled with no Result, or a Result bit-identical to the
// uncancelled run — never a third outcome, and in particular never a
// verdict the uncancelled audit would not have produced. CI runs this
// package under -race, so the cancel/worker-pool interleavings are
// exercised too.

// countObserver tallies every non-verdict observer callback; the tally
// enumerates the deterministic cancellation points of an audit.
type countObserver struct{ n atomic.Int64 }

func (c *countObserver) PhaseStart(string, int)              { c.n.Add(1) }
func (c *countObserver) PhaseEnd(string, time.Duration)      { c.n.Add(1) }
func (c *countObserver) GroupReexecuted(string, uint64, int) { c.n.Add(1) }
func (c *countObserver) OpsReplayed(int)                     { c.n.Add(1) }
func (c *countObserver) Verdict(bool, string)                {}

// cancelAtObserver cancels the audit's context at its at-th callback.
// Callbacks fire concurrently from pool workers, so the trigger is an
// atomic counter.
type cancelAtObserver struct {
	countObserver
	at     int64
	cancel context.CancelFunc
}

func (c *cancelAtObserver) hit() {
	// >= rather than ==: concurrent callbacks can jump the counter past
	// `at` between the Add and the Load, and cancel is idempotent.
	if c.n.Load() >= c.at {
		c.cancel()
	}
}

func (c *cancelAtObserver) PhaseStart(p string, u int) { c.countObserver.PhaseStart(p, u); c.hit() }
func (c *cancelAtObserver) PhaseEnd(p string, d time.Duration) {
	c.countObserver.PhaseEnd(p, d)
	c.hit()
}
func (c *cancelAtObserver) GroupReexecuted(s string, tag uint64, n int) {
	c.countObserver.GroupReexecuted(s, tag, n)
	c.hit()
}
func (c *cancelAtObserver) OpsReplayed(n int) { c.countObserver.OpsReplayed(n); c.hit() }

// cancelPoints spreads up to max cancellation points over [1, total],
// always covering the first few callbacks (the early phases) and the
// last one.
func cancelPoints(total int64, max int) []int64 {
	var pts []int64
	for k := int64(1); k <= total && k <= 4; k++ {
		pts = append(pts, k)
	}
	if total > 4 {
		step := (total - 4) / int64(max)
		if step < 1 {
			step = 1
		}
		for k := int64(5); k <= total; k += step {
			pts = append(pts, k)
		}
		pts = append(pts, total)
	}
	return pts
}

// checkCancelledRun validates one cancelled audit outcome against the
// uncancelled baseline: verdict absent (typed cancellation error) or
// bit-identical.
func checkCancelledRun(t *testing.T, res *Result, err error, base *Result, baseSnap string) {
	t.Helper()
	if err != nil {
		if !errors.Is(err, ErrAuditCanceled) {
			t.Fatalf("cancelled audit returned a non-cancellation error: %v", err)
		}
		if res != nil {
			t.Fatalf("cancelled audit returned both an error and a result")
		}
		return
	}
	if res.Accepted != base.Accepted || res.Reason != base.Reason {
		t.Fatalf("cancelled audit changed the verdict: got (%v, %q), want (%v, %q)",
			res.Accepted, res.Reason, base.Accepted, base.Reason)
	}
	if res.Accepted {
		snap, serr := res.FinalSnapshot()
		if serr != nil {
			t.Fatal(serr)
		}
		if got := snapshotFingerprint(t, snap); got != baseSnap {
			t.Fatalf("cancelled audit changed the final snapshot")
		}
	}
}

// TestAuditCancellationDeterminism serves the wiki workload (with
// injected faults), audits it uncancelled, then re-audits with the
// context cancelled at every deterministic observer callback point and
// at a handful of random wall-clock points. Every run must be absent or
// identical — across a parallel worker pool.
func TestAuditCancellationDeterminism(t *testing.T) {
	w := workload.WithErrors(
		workload.Wiki(workload.WikiParams{Requests: 160, Pages: 20, ZipfS: 0.53, Seed: 21}),
		workload.ErrorMixParams{Rate: 0.1, Seed: 5})
	prog, tr, art := serveParallelWorkload(t, w, 6, nil)
	rep := art.srv.Reports()

	base, err := AuditContext(context.Background(), prog, tr, rep, art.snap, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Accepted {
		t.Fatalf("baseline audit rejected: %s", base.Reason)
	}
	bsnap, err := base.FinalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	baseSnap := snapshotFingerprint(t, bsnap)

	// Enumerate the audit's callback timeline once.
	counter := &countObserver{}
	if _, err := AuditContext(context.Background(), prog, tr, rep, art.snap,
		Options{Workers: 1, Observer: counter}); err != nil {
		t.Fatal(err)
	}
	total := counter.n.Load()
	if total < 8 {
		t.Fatalf("audit produced only %d observer callbacks; the timeline is too short to test", total)
	}

	for _, k := range cancelPoints(total, 16) {
		ctx, cancel := context.WithCancel(context.Background())
		obs := &cancelAtObserver{at: k, cancel: cancel}
		res, err := AuditContext(ctx, prog, tr, rep, art.snap, Options{Workers: 4, Observer: obs})
		cancel()
		checkCancelledRun(t, res, err, base, baseSnap)
	}

	// Wall-clock-random cancellation points: no observer involved, the
	// cancel races the pool from outside.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		delay := time.Duration(rng.Intn(1500)) * time.Microsecond
		timer := time.AfterFunc(delay, cancel)
		res, err := AuditContext(ctx, prog, tr, rep, art.snap, Options{Workers: 4})
		timer.Stop()
		cancel()
		checkCancelledRun(t, res, err, base, baseSnap)
	}
}

// TestAuditCancellationNeverFlipsReject repeats the determinism check
// against a tampered execution: the uncancelled audit REJECTs with one
// canonical reason, and a cancelled audit must report exactly that
// reject or nothing — a cancellation must never surface as a different
// (or spurious) REJECT.
func TestAuditCancellationNeverFlipsReject(t *testing.T) {
	w := workload.Wiki(workload.WikiParams{Requests: 120, Pages: 15, ZipfS: 0.53, Seed: 31})
	tamper := func(rid, body string) string {
		if rid == "r000061" {
			return body + "<!-- tampered -->"
		}
		return body
	}
	prog, tr, art := serveParallelWorkload(t, w, 4, tamper)
	rep := art.srv.Reports()

	base, err := AuditContext(context.Background(), prog, tr, rep, art.snap, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Accepted {
		t.Fatal("tampered execution must REJECT")
	}

	counter := &countObserver{}
	if _, err := AuditContext(context.Background(), prog, tr, rep, art.snap,
		Options{Workers: 1, Observer: counter}); err != nil {
		t.Fatal(err)
	}

	for _, k := range cancelPoints(counter.n.Load(), 12) {
		ctx, cancel := context.WithCancel(context.Background())
		obs := &cancelAtObserver{at: k, cancel: cancel}
		res, err := AuditContext(ctx, prog, tr, rep, art.snap, Options{Workers: 4, Observer: obs})
		cancel()
		checkCancelledRun(t, res, err, base, "")
	}
}

// TestCancelledBeforeStart pins the typed error on every context-aware
// entry point when the context is already dead: no verdict, no partial
// result, errors.Is matches both ErrAuditCanceled and context.Canceled.
func TestCancelledBeforeStart(t *testing.T) {
	w := workload.Wiki(workload.WikiParams{Requests: 24, Pages: 6, ZipfS: 0.53, Seed: 41})
	prog, tr, art := serveParallelWorkload(t, w, 2, nil)
	rep := art.srv.Reports()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if res, err := AuditContext(ctx, prog, tr, rep, art.snap, Options{}); res != nil ||
		!errors.Is(err, ErrAuditCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("AuditContext on a dead context: res=%v err=%v", res, err)
	}
	if res, err := OOOAuditContext(ctx, prog, tr, rep, art.snap); res != nil ||
		!errors.Is(err, ErrAuditCanceled) {
		t.Fatalf("OOOAuditContext on a dead context: res=%v err=%v", res, err)
	}
	if res, err := PatchAuditContext(ctx, prog, tr, rep, art.snap); res != nil ||
		!errors.Is(err, ErrAuditCanceled) {
		t.Fatalf("PatchAuditContext on a dead context: res=%v err=%v", res, err)
	}

	// The deprecated wrappers still work and agree with the baseline.
	res, err := Audit(prog, tr, rep, art.snap, Options{})
	if err != nil || !res.Accepted {
		t.Fatalf("deprecated Audit wrapper: res=%+v err=%v", res, err)
	}
}
