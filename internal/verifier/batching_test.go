package verifier

import (
	"fmt"
	"reflect"
	"testing"

	"orochi/internal/lang"
	"orochi/internal/reports"
	"orochi/internal/server"
	"orochi/internal/trace"
)

// These tests pin the Phase-3 task construction: buildGroupTasks'
// chunking edge cases and the small-group packing pass. Packing is pure
// scheduling — the packed task order must replay the exact canonical
// (tag, chunk) sequence a sequential audit runs, and audit results must
// be bit-identical at any SmallGroup setting.

// serveTampered is serveWorkload with a response-tampering hook.
func serveTampered(t *testing.T, prog *lang.Program, inputs []trace.Input,
	tamper func(rid, body string) string) (*trace.Trace, *serverArtifacts) {
	t.Helper()
	srv := server.New(prog, server.Options{Record: true, TamperResponse: tamper})
	if err := srv.Setup(testSchema); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	srv.ServeAll(inputs, 4)
	return srv.Trace(), &serverArtifacts{srv: srv, snap: snap}
}

func groupReports(groups map[uint64][]string) *reports.Reports {
	scripts := make(map[uint64]string, len(groups))
	for tag := range groups {
		scripts[tag] = fmt.Sprintf("s%d", tag)
	}
	return &reports.Reports{Groups: groups, Scripts: scripts}
}

func ridRange(n int) []string {
	rids := make([]string, n)
	for i := range rids {
		rids[i] = fmt.Sprintf("r%06d", i+1)
	}
	return rids
}

// TestBuildGroupTasksEdges checks the chunking boundaries: a MaxGroup
// at least as large as the group yields one batch, an exact multiple
// yields full batches only, and a remainder yields a short (down to
// single-lane) tail batch.
func TestBuildGroupTasksEdges(t *testing.T) {
	cases := []struct {
		name     string
		size     int
		maxGroup int
		want     []int // rid count per task, in order
	}{
		{"max-group-above-size", 5, 8, []int{5}},
		{"max-group-equals-size", 6, 6, []int{6}},
		{"exact-multiple", 6, 3, []int{3, 3}},
		{"single-lane-tail", 7, 3, []int{3, 3, 1}},
		{"single-request-group", 1, 3000, []int{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := groupReports(map[uint64][]string{42: ridRange(tc.size)})
			tasks := buildGroupTasks(rep, tc.maxGroup)
			if len(tasks) != len(tc.want) {
				t.Fatalf("got %d tasks, want %d", len(tasks), len(tc.want))
			}
			var rids []string
			for i, task := range tasks {
				if task.tag != 42 || task.script != "s42" {
					t.Fatalf("task %d has tag %d script %q", i, task.tag, task.script)
				}
				if task.chunk != i {
					t.Fatalf("task %d has chunk %d, want %d", i, task.chunk, i)
				}
				if len(task.rids) != tc.want[i] {
					t.Fatalf("task %d holds %d rids, want %d", i, len(task.rids), tc.want[i])
				}
				rids = append(rids, task.rids...)
			}
			// Chunking must partition the group in order, losing nothing.
			if !reflect.DeepEqual(rids, ridRange(tc.size)) {
				t.Fatalf("chunked rids %v do not partition the group", rids)
			}
		})
	}
}

// TestBuildGroupTasksDedupesAcrossChunks: duplicate rids in a reported
// group are dropped before chunking, so a duplicate never lands in two
// batches (re-execution is idempotent but the op-replay position is
// not).
func TestBuildGroupTasksDedupesAcrossChunks(t *testing.T) {
	rids := append(ridRange(4), "r000002", "r000001")
	rep := groupReports(map[uint64][]string{7: rids})
	tasks := buildGroupTasks(rep, 2)
	if len(tasks) != 2 {
		t.Fatalf("got %d tasks, want 2", len(tasks))
	}
	var flat []string
	for _, task := range tasks {
		flat = append(flat, task.rids...)
	}
	if !reflect.DeepEqual(flat, ridRange(4)) {
		t.Fatalf("deduped rids = %v", flat)
	}
}

// syntheticTasks builds a task list shaped like a real Phase 3: runs of
// tiny groups interleaved with full-size batches, across scripts.
func syntheticTasks() []groupTask {
	var tasks []groupTask
	add := func(script string, n int) {
		tasks = append(tasks, groupTask{
			tag: uint64(len(tasks)), script: script, rids: ridRange(n),
		})
	}
	for i := 0; i < 6; i++ {
		add("view", 1)
	}
	add("view", 40)
	add("view", 2)
	add("edit", 3)
	add("edit", 3)
	add("view", 7)
	add("view", 8) // at threshold 8: never packed
	for i := 0; i < 30; i++ {
		add("list", 2)
	}
	return tasks
}

// TestPackGroupTasksOrderProperty: for any threshold and cap, the
// concatenation of the packs must be exactly 0..len(tasks)-1 — the
// packed schedule replays the canonical (tag, chunk) sequence with no
// reordering, loss, or duplication.
func TestPackGroupTasksOrderProperty(t *testing.T) {
	tasks := syntheticTasks()
	for _, threshold := range []int{-1, 0, 1, 2, 8, 100} {
		for _, maxGroup := range []int{1, 4, 10, 3000} {
			packs := packGroupTasks(tasks, threshold, maxGroup)
			var flat []int
			for _, pack := range packs {
				if len(pack) == 0 {
					t.Fatalf("threshold=%d maxGroup=%d: empty pack", threshold, maxGroup)
				}
				flat = append(flat, pack...)
			}
			if len(flat) != len(tasks) {
				t.Fatalf("threshold=%d maxGroup=%d: %d indices for %d tasks", threshold, maxGroup, len(flat), len(tasks))
			}
			for i, idx := range flat {
				if idx != i {
					t.Fatalf("threshold=%d maxGroup=%d: position %d holds task %d — canonical order broken",
						threshold, maxGroup, i, idx)
				}
			}
		}
	}
}

// TestPackGroupTasksInvariants checks the packing rules themselves:
// only sub-threshold same-script neighbors coalesce, packs respect the
// combined-rid cap, and a non-positive threshold disables packing.
func TestPackGroupTasksInvariants(t *testing.T) {
	tasks := syntheticTasks()
	const threshold, maxGroup = 8, 10
	packs := packGroupTasks(tasks, threshold, maxGroup)
	sawMulti := false
	for _, pack := range packs {
		if len(pack) == 1 {
			continue
		}
		sawMulti = true
		total := 0
		for _, i := range pack {
			if len(tasks[i].rids) >= threshold {
				t.Fatalf("task %d with %d rids packed at threshold %d", i, len(tasks[i].rids), threshold)
			}
			if tasks[i].script != tasks[pack[0]].script {
				t.Fatalf("pack mixes scripts %q and %q", tasks[pack[0]].script, tasks[i].script)
			}
			total += len(tasks[i].rids)
		}
		if total > maxGroup {
			t.Fatalf("pack holds %d rids, cap %d", total, maxGroup)
		}
	}
	if !sawMulti {
		t.Fatal("no multi-task pack formed on a workload full of tiny groups")
	}

	for _, disabled := range []int{0, -1} {
		for _, pack := range packGroupTasks(tasks, disabled, maxGroup) {
			if len(pack) != 1 {
				t.Fatalf("threshold %d must disable packing, got pack of %d", disabled, len(pack))
			}
		}
	}
}

// TestSmallGroupBatchingMatchesUnbatched audits one recorded run at
// several SmallGroup × Workers settings — packing disabled, default,
// and aggressive — and requires bit-identical verdicts, replay counts,
// instruction counts, per-group stats, and final snapshots. MaxGroup 4
// splinters the workload into many small batches so packs actually
// form.
func TestSmallGroupBatchingMatchesUnbatched(t *testing.T) {
	prog := compileApp(t)
	inputs := sampleInputs(60)
	tr, art := serveWorkload(t, prog, inputs, 4)

	base, err := Audit(prog, tr, art.srv.Reports(), art.snap,
		Options{MaxGroup: 4, SmallGroup: -1, Workers: 1, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Accepted {
		t.Fatalf("baseline rejected: %s", base.Reason)
	}
	baseSnap, err := base.FinalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	baseFP := snapshotFingerprint(t, baseSnap)

	for _, small := range []int{0, 2, 1000} {
		for _, workers := range []int{1, 8} {
			name := fmt.Sprintf("small=%d/workers=%d", small, workers)
			res, err := Audit(prog, tr, art.srv.Reports(), art.snap,
				Options{MaxGroup: 4, SmallGroup: small, Workers: workers, CollectStats: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Accepted != base.Accepted || res.Reason != base.Reason {
				t.Fatalf("%s: verdict (%v, %q), baseline (%v, %q)",
					name, res.Accepted, res.Reason, base.Accepted, base.Reason)
			}
			if res.Stats.RequestsReplayed != base.Stats.RequestsReplayed ||
				res.Stats.GroupBatches != base.Stats.GroupBatches {
				t.Fatalf("%s: replayed %d in %d batches, baseline %d in %d",
					name, res.Stats.RequestsReplayed, res.Stats.GroupBatches,
					base.Stats.RequestsReplayed, base.Stats.GroupBatches)
			}
			if res.Stats.InstrUni != base.Stats.InstrUni || res.Stats.InstrMulti != base.Stats.InstrMulti {
				t.Fatalf("%s: instruction counts (%d,%d), baseline (%d,%d)",
					name, res.Stats.InstrUni, res.Stats.InstrMulti, base.Stats.InstrUni, base.Stats.InstrMulti)
			}
			if res.Stats.DedupHits != base.Stats.DedupHits || res.Stats.DedupMisses != base.Stats.DedupMisses {
				t.Fatalf("%s: dedup (%d,%d), baseline (%d,%d)",
					name, res.Stats.DedupHits, res.Stats.DedupMisses, base.Stats.DedupHits, base.Stats.DedupMisses)
			}
			if !reflect.DeepEqual(res.Stats.Groups, base.Stats.Groups) {
				t.Fatalf("%s: per-group stats diverge from baseline", name)
			}
			snap, err := res.FinalSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			if fp := snapshotFingerprint(t, snap); fp != baseFP {
				t.Fatalf("%s: final snapshot diverges from baseline", name)
			}
		}
	}
}

// TestSmallGroupBatchingRejectDeterminism: with packing on, a tampered
// response must be rejected with the sequential unpacked audit's exact
// reason and forensics — including the chunk coordinate, which names
// the original (tag, chunk) batch, not the pack.
func TestSmallGroupBatchingRejectDeterminism(t *testing.T) {
	prog := compileApp(t)
	inputs := sampleInputs(60)
	tampered := "r000031"
	tr, arts := serveTampered(t, prog, inputs, func(rid, body string) string {
		if rid == tampered {
			return body + "<!-- tampered -->"
		}
		return body
	})

	base, err := Audit(prog, tr, arts.srv.Reports(), arts.snap,
		Options{MaxGroup: 4, SmallGroup: -1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Accepted {
		t.Fatal("tampered run accepted by baseline")
	}
	for _, small := range []int{0, 2} {
		for _, workers := range []int{1, 8} {
			res, err := Audit(prog, tr, arts.srv.Reports(), arts.snap,
				Options{MaxGroup: 4, SmallGroup: small, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if res.Accepted {
				t.Fatalf("small=%d workers=%d: tampered run accepted", small, workers)
			}
			if res.Reason != base.Reason {
				t.Fatalf("small=%d workers=%d: reason %q, baseline %q", small, workers, res.Reason, base.Reason)
			}
			if !reflect.DeepEqual(res.Forensics, base.Forensics) {
				t.Fatalf("small=%d workers=%d: forensics %+v, baseline %+v",
					small, workers, res.Forensics, base.Forensics)
			}
		}
	}
}
