package verifier

import (
	"reflect"
	"testing"

	"orochi/internal/lang"
	"orochi/internal/workload"
)

// These tests pin the forensics contract: a REJECT's structured
// evidence names the exact offending request (and its group/object
// coordinates) and is bit-identical at every Options.Workers setting —
// forensics ride the same first-failure arbitration as the reject
// reason, so parallelism must not change what the operator sees.

// forensicsWorkloads returns the two paper workloads the determinism
// test tampers with, plus the request ID to corrupt in each.
func forensicsWorkloads() map[string]struct {
	w   *workload.Workload
	rid string
} {
	return map[string]struct {
		w   *workload.Workload
		rid string
	}{
		"wiki": {
			w:   workload.Wiki(workload.WikiParams{Requests: 220, Pages: 25, ZipfS: 0.53, Seed: 11}),
			rid: "r000137",
		},
		"forum": {
			w:   workload.Forum(workload.ForumParams{Requests: 220, Topics: 8, Users: 12, GuestRatio: 0.8, Seed: 12}),
			rid: "r000171",
		},
	}
}

// TestForensicsPinpointTamperedRequest corrupts one known request's
// recorded response on the wiki and forum workloads and checks that the
// forensics name exactly that request — phase, check, group
// coordinates, and response diff — identically at Workers=1 and
// Workers=8.
func TestForensicsPinpointTamperedRequest(t *testing.T) {
	for name, tc := range forensicsWorkloads() {
		t.Run(name, func(t *testing.T) {
			target := tc.rid
			prog, tr, art := serveParallelWorkload(t, tc.w, 4, func(rid, body string) string {
				if rid == target {
					return body + "<!-- tampered -->"
				}
				return body
			})
			rep := art.srv.Reports()

			seq, err := Audit(prog, tr, rep, art.snap, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if seq.Accepted {
				t.Fatal("tampered response must be rejected")
			}
			f := seq.Forensics
			if f == nil {
				t.Fatal("rejected audit published no forensics")
			}
			if f.RequestID != target {
				t.Fatalf("forensics blame request %q, tampered %q", f.RequestID, target)
			}
			if f.Phase != PhaseReExec || f.Check != "output-mismatch" {
				t.Fatalf("forensics classify failure as (%s, %s), want (%s, output-mismatch)", f.Phase, f.Check, PhaseReExec)
			}
			if f.Script == "" || f.GroupTag == "" || f.GroupSize <= 0 {
				t.Fatalf("forensics missing group coordinates: %+v", f)
			}
			if f.Diff == nil {
				t.Fatal("output-mismatch forensics carry no response diff")
			}
			// The tamper appended bytes, so the diff starts where the
			// honest body ended.
			if f.Diff.TracedLen != f.Diff.ReExecLen+len("<!-- tampered -->") {
				t.Fatalf("diff lengths %d/%d do not reflect the appended tamper", f.Diff.TracedLen, f.Diff.ReExecLen)
			}
			if f.Diff.FirstDiff != f.Diff.ReExecLen {
				t.Fatalf("first divergence at %d, want the honest body length %d", f.Diff.FirstDiff, f.Diff.ReExecLen)
			}

			// Bit-identical at any worker count, across repeated parallel
			// schedules.
			for run := 0; run < 3; run++ {
				par, err := Audit(prog, tr, rep, art.snap, Options{Workers: 8})
				if err != nil {
					t.Fatal(err)
				}
				if par.Accepted || par.Reason != seq.Reason {
					t.Fatalf("run %d: parallel verdict (%v, %q) differs from sequential (false, %q)",
						run, par.Accepted, par.Reason, seq.Reason)
				}
				if !reflect.DeepEqual(par.Forensics, seq.Forensics) {
					t.Fatalf("run %d: forensics differ across worker counts:\nseq: %+v\npar: %+v",
						run, seq.Forensics, par.Forensics)
				}
			}
		})
	}
}

// TestForensicsPhase2ObjectCoordinates forges one operation in the
// report's object logs and checks the forensics carry Phase 2
// coordinates — the object and the 1-based log sequence number —
// deterministically across worker counts.
func TestForensicsPhase2ObjectCoordinates(t *testing.T) {
	prog := compileApp(t)
	inputs := sampleInputs(12)
	tr, art := serveWorkload(t, prog, inputs, 2)
	rep := art.srv.Reports()
	forged := false
	for i := range rep.OpLogs {
		for j := range rep.OpLogs[i] {
			if rep.OpLogs[i][j].Type == lang.KvSet {
				rep.OpLogs[i][j].Value = "\x00not-a-value"
				forged = true
				break
			}
		}
		if forged {
			break
		}
	}
	if !forged {
		t.Fatal("workload produced no KvSet to forge")
	}
	var first *Forensics
	for _, workers := range []int{1, 4} {
		res, err := Audit(prog, tr, rep, art.snap, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatal("forged op log must be rejected")
		}
		f := res.Forensics
		if f == nil {
			t.Fatal("rejected audit published no forensics")
		}
		if f.Phase != PhaseRedo {
			t.Fatalf("workers=%d: forged write classified under phase %s, want %s", workers, f.Phase, PhaseRedo)
		}
		if f.Object == "" || f.OpIndex <= 0 {
			t.Fatalf("workers=%d: forensics missing object/log coordinates: %+v", workers, f)
		}
		if first == nil {
			first = f
		} else if !reflect.DeepEqual(first, f) {
			t.Fatalf("forensics differ across worker counts:\nfirst: %+v\nnow:   %+v", first, f)
		}
	}
}

// TestForensicsNilOnAccept: an accepted audit publishes no forensics.
func TestForensicsNilOnAccept(t *testing.T) {
	prog := compileApp(t)
	tr, art := serveWorkload(t, prog, sampleInputs(16), 2)
	res, err := Audit(prog, tr, art.srv.Reports(), art.snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("honest run rejected: %s", res.Reason)
	}
	if res.Forensics != nil {
		t.Fatalf("accepted audit carries forensics: %+v", res.Forensics)
	}
}
