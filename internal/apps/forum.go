package apps

// Forum is the phpBB-like bulletin board (§5: the CentOS forum
// workload). Registered users carry a session cookie; guests browse
// anonymously at a ~40:1 ratio. Viewing a topic bumps its view counter
// only every Nth view (the paper reduced phpBB's update frequency "to
// create more audit-time acceleration opportunities", §5.4); replying
// runs a multi-statement transaction inserting the post and bumping the
// topic's reply counter atomically.
func Forum() *App {
	return withFramework(&App{
		Name: "forum",
		Schema: []string{
			`CREATE TABLE topics (id INT PRIMARY KEY AUTOINCREMENT, title TEXT, views INT, replies INT, last_post INT)`,
			`CREATE TABLE posts (id INT PRIMARY KEY AUTOINCREMENT, topic_id INT, author TEXT, body TEXT, created INT)`,
			`CREATE TABLE users (id INT PRIMARY KEY AUTOINCREMENT, name TEXT, joined INT)`,
		},
		Sources: map[string]string{
			"forumlib": forumLib,
			// index lists topics by recency.
			"index": `
echo forum_header("Board index");
$topics = db_query("SELECT id, title, views, replies FROM topics ORDER BY last_post DESC LIMIT 30");
echo "<table class='topics'>";
foreach ($topics as $tp) {
  echo "<tr><td><a href='/viewtopic?t=" . $tp["id"] . "'>" . htmlspecialchars($tp["title"]) . "</a></td>"
     . "<td>" . $tp["replies"] . " replies</td><td>" . $tp["views"] . " views</td></tr>";
}
echo "</table>";
echo forum_footer(forum_user());
`,
			// viewtopic renders a topic's posts. Every view increments a
			// per-topic APC counter; the DB view counter is flushed once
			// per 10 views to keep the read path mostly read-only.
			"viewtopic": `
$tid = intval($_GET["t"]);
$rows = db_query("SELECT id, title, views, replies FROM topics WHERE id = " . $tid);
if (count($rows) == 0) {
  echo forum_header("Error");
  echo "<p>No such topic.</p>";
  echo forum_footer(forum_user());
} else {
  $topic = $rows[0];
  $pending = apc_get("views:" . $tid);
  if ($pending === null) { $pending = 0; }
  $pending = $pending + 1;
  if ($pending >= 10) {
    db_exec("UPDATE topics SET views = views + " . $pending . " WHERE id = " . $tid);
    apc_set("views:" . $tid, 0);
  } else {
    apc_set("views:" . $tid, $pending);
  }
  echo forum_header($topic["title"]);
  $posts = db_query("SELECT author, body, created FROM posts WHERE topic_id = " . $tid . " ORDER BY id LIMIT 50");
  foreach ($posts as $p) {
    echo forum_post($p["author"], $p["body"], $p["created"]);
  }
  echo "<div class='counts'>" . $topic["replies"] . " replies</div>";
  echo forum_footer(forum_user());
}
`,
			// reply appends a post inside a transaction (§4.4: the
			// transaction encloses only DB statements).
			"reply": `
$user = forum_user();
$tid = intval($_POST["t"]);
$body = $_POST["body"];
if ($user == "") {
  echo forum_header("Error");
  echo "<p>You must log in to reply.</p>";
  echo forum_footer("");
} else {
  $now = time();
  db_transaction([
    "INSERT INTO posts (topic_id, author, body, created) VALUES (" . $tid . ", " . db_quote($user) . ", " . db_quote($body) . ", " . $now . ")",
    "UPDATE topics SET replies = replies + 1, last_post = " . $now . " WHERE id = " . $tid
  ]);
  echo forum_header("Reply posted");
  echo "<p>Your reply to topic " . $tid . " was posted.</p>";
  echo forum_footer($user);
}
`,
			// login establishes the session for a registered user.
			"login": `
$name = $_POST["name"];
$rows = db_query("SELECT id FROM users WHERE name = " . db_quote($name));
if (count($rows) == 0) {
  echo forum_header("Login failed");
  echo "<p>Unknown user.</p>";
  echo forum_footer("");
} else {
  $sid = $_COOKIE["sid"];
  session_set("forum:" . $sid, ["user" => $name, "uid" => $rows[0]["id"], "since" => time()]);
  echo forum_header("Welcome");
  echo "<p>Hello, " . htmlspecialchars($name) . "!</p>";
  echo forum_footer($name);
}
`,
			// newtopic starts a thread.
			"newtopic": `
$user = forum_user();
$title = $_POST["title"];
$body = $_POST["body"];
if ($user == "") {
  echo forum_header("Error");
  echo "<p>You must log in to start a topic.</p>";
  echo forum_footer("");
} else {
  $now = time();
  $r = db_exec("INSERT INTO topics (title, views, replies, last_post) VALUES (" . db_quote($title) . ", 0, 0, " . $now . ")");
  $tid = $r["insert_id"];
  db_exec("INSERT INTO posts (topic_id, author, body, created) VALUES (" . $tid . ", " . db_quote($user) . ", " . db_quote($body) . ", " . $now . ")");
  echo forum_header("Topic created");
  echo "<p>Created topic " . $tid . ".</p>";
  echo forum_footer($user);
}
`,
		},
	}, "forum")
}

const forumLib = `
function forum_user() {
  if (!isset($_COOKIE["sid"])) {
    return "";
  }
  $sess = session_get("forum:" . $_COOKIE["sid"]);
  if (!is_array($sess)) {
    return "";
  }
  return $sess["user"];
}

// The board chrome does the repeated work a phpBB theme does: menu bar,
// breadcrumbs, style links, footer links. This shared computation is
// what the grouped re-execution collapses (§5.2).
function forum_header($title) {
  $out = "<html><head><title>" . htmlspecialchars($title) . " - OroBB</title>";
  $out .= "<meta charset='utf-8' /><meta name='generator' content='OroBB 3.0' />";
  foreach (["stylesheet.css", "buttons.css", "responsive.css"] as $css) {
    $out .= "<link rel='stylesheet' href='/styles/" . $css . "' />";
  }
  $out .= "</head><body class='oro-bb'>";
  $out .= "<div id='masthead'><h1>OroBB</h1><h2>" . htmlspecialchars($title) . "</h2>";
  $menu = ["index" => "Board index", "search" => "Search", "members" => "Members", "faq" => "FAQ", "rules" => "Rules"];
  $out .= "<ul id='menubar'>";
  foreach ($menu as $href => $label) {
    $out .= "<li class='menu " . $href . "'><a href='/" . $href . "'>" . $label . "</a></li>";
  }
  $out .= "</ul></div><div id='page-body'>";
  return $out;
}

function forum_footer($user) {
  $who = $user == "" ? "guest" : htmlspecialchars($user);
  $out = "</div><div id='footer'>Browsing as " . $who . " &middot; OroBB";
  foreach (["Delete cookies", "Contact us", "Terms", "Privacy"] as $i => $l) {
    $out .= ($i == 0 ? " | " : " &middot; ") . str_replace(" ", "&nbsp;", $l);
  }
  $out .= "<div class='copyright'>Powered by OroBB &copy; OroBB Limited</div></div></body></html>";
  return $out;
}

function forum_post($author, $body, $created) {
  return "<div class='post'><div class='author'>" . htmlspecialchars($author) . "</div>"
       . "<div class='body'>" . nl2br(htmlspecialchars($body)) . "</div>"
       . "<div class='when'>#" . $created . "</div></div>";
}
`
