package apps_test

import (
	"strings"
	"testing"

	"orochi/internal/apps"
	"orochi/internal/harness"
	"orochi/internal/server"
	"orochi/internal/trace"
	"orochi/internal/verifier"
	"orochi/internal/workload"
)

func TestAllAppsCompile(t *testing.T) {
	for _, app := range apps.All() {
		prog := app.Compile()
		if len(prog.Scripts) < 4 {
			t.Errorf("%s: only %d scripts", app.Name, len(prog.Scripts))
		}
	}
}

func TestByName(t *testing.T) {
	if apps.ByName("wiki") == nil || apps.ByName("forum") == nil || apps.ByName("hotcrp") == nil {
		t.Fatal("ByName must find the three applications")
	}
	if apps.ByName("nope") != nil {
		t.Fatal("ByName must return nil for unknown apps")
	}
}

func newServer(t *testing.T, app *apps.App, seed []string) *server.Server {
	t.Helper()
	srv := server.New(app.Compile(), server.Options{Record: true})
	if err := srv.Setup(app.Schema); err != nil {
		t.Fatal(err)
	}
	if err := srv.Setup(seed); err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestWikiViewRendersSeededPage(t *testing.T) {
	w := workload.Wiki(workload.WikiParams{Requests: 0, Pages: 5, ZipfS: 0.53, Seed: 1})
	srv := newServer(t, w.App, w.Seed)
	_, body := srv.Handle(trace.Input{Script: "view", Get: map[string]string{"page": "Page_000"}})
	if !strings.Contains(body, "<h1>Page_000</h1>") {
		t.Fatalf("view missing title: %s", body)
	}
	if !strings.Contains(body, "<p>") {
		t.Fatalf("view missing rendered body: %s", body)
	}
	// Second view must hit the cache and produce identical output.
	_, body2 := srv.Handle(trace.Input{Script: "view", Get: map[string]string{"page": "Page_000"}})
	if body != body2 {
		t.Fatal("cached view differs from rendered view")
	}
}

func TestWikiMissingPage(t *testing.T) {
	w := workload.Wiki(workload.WikiParams{Requests: 0, Pages: 2, ZipfS: 0.53, Seed: 1})
	srv := newServer(t, w.App, w.Seed)
	_, body := srv.Handle(trace.Input{Script: "view", Get: map[string]string{"page": "Nope"}})
	if !strings.Contains(body, "does not exist") {
		t.Fatalf("missing page: %s", body)
	}
}

func TestWikiEditInvalidatesCache(t *testing.T) {
	w := workload.Wiki(workload.WikiParams{Requests: 0, Pages: 2, ZipfS: 0.53, Seed: 1})
	srv := newServer(t, w.App, w.Seed)
	view := trace.Input{Script: "view", Get: map[string]string{"page": "Page_000"}}
	_, before := srv.Handle(view)
	srv.Handle(trace.Input{
		Script: "edit",
		Post:   map[string]string{"page": "Page_000", "text": "== Page_000 ==\nFresh content here."},
		Cookie: map[string]string{"user": "alice"},
	})
	_, after := srv.Handle(view)
	if before == after {
		t.Fatal("edit did not invalidate the cache")
	}
	if !strings.Contains(after, "Fresh content here.") {
		t.Fatalf("edit content missing: %s", after)
	}
}

func TestWikiSearchAndHistoryAndRecent(t *testing.T) {
	w := workload.Wiki(workload.WikiParams{Requests: 0, Pages: 12, ZipfS: 0.53, Seed: 1})
	srv := newServer(t, w.App, w.Seed)
	_, body := srv.Handle(trace.Input{Script: "search", Get: map[string]string{"q": "Page"}})
	if !strings.Contains(body, "result(s)") || !strings.Contains(body, "Page_000") {
		t.Fatalf("search: %s", body)
	}
	_, body = srv.Handle(trace.Input{Script: "history", Get: map[string]string{"page": "Page_001"}})
	if !strings.Contains(body, "rev ") {
		t.Fatalf("history: %s", body)
	}
	_, body = srv.Handle(trace.Input{Script: "recent"})
	if !strings.Contains(body, "edited by") {
		t.Fatalf("recent: %s", body)
	}
}

func TestForumGuestAndLoginFlow(t *testing.T) {
	w := workload.Forum(workload.ForumParams{Requests: 0, Topics: 3, Users: 5, GuestRatio: 0.9, Seed: 2})
	srv := newServer(t, w.App, w.Seed)
	// Guest views a topic.
	_, body := srv.Handle(trace.Input{Script: "viewtopic", Get: map[string]string{"t": "1"}})
	if !strings.Contains(body, "Browsing as guest") {
		t.Fatalf("guest view: %s", body)
	}
	if !strings.Contains(body, "Seed post") {
		t.Fatalf("posts missing: %s", body)
	}
	// Reply without login fails.
	_, body = srv.Handle(trace.Input{
		Script: "reply",
		Post:   map[string]string{"t": "1", "body": "unauthorized"},
		Cookie: map[string]string{"sid": "sid-000"},
	})
	if !strings.Contains(body, "must log in") {
		t.Fatalf("unauthorized reply: %s", body)
	}
	// Login then reply succeeds.
	_, body = srv.Handle(trace.Input{
		Script: "login",
		Post:   map[string]string{"name": "user000"},
		Cookie: map[string]string{"sid": "sid-000"},
	})
	if !strings.Contains(body, "Hello, user000") {
		t.Fatalf("login: %s", body)
	}
	_, body = srv.Handle(trace.Input{
		Script: "reply",
		Post:   map[string]string{"t": "1", "body": "hello world"},
		Cookie: map[string]string{"sid": "sid-000"},
	})
	if !strings.Contains(body, "was posted") {
		t.Fatalf("reply: %s", body)
	}
	// The reply shows up.
	_, body = srv.Handle(trace.Input{Script: "viewtopic", Get: map[string]string{"t": "1"}})
	if !strings.Contains(body, "hello world") {
		t.Fatalf("reply not visible: %s", body)
	}
}

func TestForumViewCounterFlush(t *testing.T) {
	w := workload.Forum(workload.ForumParams{Requests: 0, Topics: 1, Users: 2, GuestRatio: 0.5, Seed: 2})
	srv := newServer(t, w.App, w.Seed)
	for i := 0; i < 25; i++ {
		srv.Handle(trace.Input{Script: "viewtopic", Get: map[string]string{"t": "1"}})
	}
	r, err := srv.Store.DB.Exec(`SELECT views FROM topics WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	// Seeded views + two flushes of 10.
	views := r.Rows[0][0].(int64)
	if views < 20 {
		t.Fatalf("views = %d, expected at least two flushed batches", views)
	}
}

func TestHotCRPSubmitReviewBrowse(t *testing.T) {
	app := apps.HotCRP()
	srv := newServer(t, app, nil)
	_, body := srv.Handle(trace.Input{
		Script: "submit",
		Post:   map[string]string{"title": "T1", "abstract": "A first abstract."},
		Cookie: map[string]string{"user": "author0"},
	})
	if !strings.Contains(body, "Paper #1 received") {
		t.Fatalf("submit: %s", body)
	}
	// Update of the same paper.
	_, body = srv.Handle(trace.Input{
		Script: "submit",
		Post:   map[string]string{"title": "T1", "abstract": "A better abstract."},
		Cookie: map[string]string{"user": "author0"},
	})
	if !strings.Contains(body, "Paper #1 updated") {
		t.Fatalf("update: %s", body)
	}
	// Two review versions.
	for v := 0; v < 2; v++ {
		_, body = srv.Handle(trace.Input{
			Script: "review",
			Post:   map[string]string{"p": "1", "score": "4", "text": "solid work"},
			Cookie: map[string]string{"user": "rev00"},
		})
	}
	if !strings.Contains(body, "Review v2") {
		t.Fatalf("review versioning: %s", body)
	}
	// Paper page shows the latest version only.
	_, body = srv.Handle(trace.Input{
		Script: "paper", Get: map[string]string{"p": "1"}, Cookie: map[string]string{"user": "rev00"},
	})
	if !strings.Contains(body, "v2") || strings.Contains(body, "v1") {
		t.Fatalf("paper page should show latest review version: %s", body)
	}
	if !strings.Contains(body, "average score: 4.00") {
		t.Fatalf("average: %s", body)
	}
	_, body = srv.Handle(trace.Input{
		Script: "reviewerhome", Cookie: map[string]string{"user": "rev00"},
	})
	if !strings.Contains(body, "1 paper(s) reviewed") {
		t.Fatalf("reviewerhome: %s", body)
	}
}

// End-to-end: each application serves its (scaled) workload concurrently
// and the audit accepts.
func TestWorkloadsAuditEndToEnd(t *testing.T) {
	cases := []struct {
		name string
		w    *workload.Workload
	}{
		{"wiki", workload.Wiki(workload.WikiParams{Requests: 150, Pages: 20, ZipfS: 0.53, Seed: 11})},
		{"forum", workload.Forum(workload.ForumParams{Requests: 150, Topics: 5, Users: 8, GuestRatio: 0.8, Seed: 12})},
		{"hotcrp", workload.HotCRP(workload.HotCRPParams{
			Papers: 6, Reviewers: 4, UpdatesMax: 3, ReviewsPerPaper: 2, ViewsPerReviewer: 10, Seed: 13,
		})},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			served, err := harness.Serve(c.w, harness.ServeConfig{Record: true, Concurrency: 6})
			if err != nil {
				t.Fatal(err)
			}
			res, err := served.Audit(verifier.Options{CollectStats: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Accepted {
				t.Fatalf("%s audit rejected: %s", c.name, res.Reason)
			}
			if res.Stats.RequestsReplayed != len(c.w.Requests) {
				t.Fatalf("replayed %d of %d", res.Stats.RequestsReplayed, len(c.w.Requests))
			}
			// Grouping must actually deduplicate.
			multi := 0
			for _, g := range res.Stats.Groups {
				if g.N > 1 {
					multi++
				}
			}
			if multi == 0 {
				t.Errorf("%s: no multi-request control-flow groups formed", c.name)
			}
		})
	}
}

func TestWorkloadTamperDetectedEndToEnd(t *testing.T) {
	w := workload.Wiki(workload.WikiParams{Requests: 60, Pages: 10, ZipfS: 0.53, Seed: 21})
	served, err := harness.Serve(w, harness.ServeConfig{
		Record: true, Concurrency: 4,
		TamperResponse: func(rid, body string) string {
			if rid == "r000033" {
				return strings.Replace(body, "OroWiki", "EvilWiki", 1)
			}
			return body
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := served.Audit(verifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("tampered wiki response must be rejected")
	}
}

func TestZipfShape(t *testing.T) {
	w := workload.Wiki(workload.WikiParams{Requests: 3000, Pages: 50, ZipfS: 0.53, Seed: 5})
	counts := map[string]int{}
	for _, in := range w.Requests {
		if in.Script == "view" {
			counts[in.Get["page"]]++
		}
	}
	// Rank 0 must be requested more than rank 30.
	if counts["Page_000"] <= counts["Page_030"] {
		t.Fatalf("zipf shape violated: %d vs %d", counts["Page_000"], counts["Page_030"])
	}
}

func TestWorkloadSizes(t *testing.T) {
	if got := len(workload.Wiki(workload.WikiParams{Requests: 100, Pages: 10, ZipfS: 0.5, Seed: 1}).Requests); got != 100 {
		t.Fatalf("wiki requests = %d", got)
	}
	if got := len(workload.Forum(workload.ForumParams{Requests: 120, Topics: 4, Users: 6, GuestRatio: 0.9, Seed: 1}).Requests); got != 120 {
		t.Fatalf("forum requests = %d", got)
	}
	hw := workload.HotCRP(workload.HotCRPParams{Papers: 4, Reviewers: 3, UpdatesMax: 2, ReviewsPerPaper: 2, ViewsPerReviewer: 6, Seed: 1})
	if len(hw.Requests) == 0 {
		t.Fatal("hotcrp workload empty")
	}
	// Paper-sized defaults match §5.
	def := workload.DefaultWikiParams()
	if def.Requests != 20000 || def.Pages != 200 {
		t.Fatalf("wiki defaults: %+v", def)
	}
	if workload.DefaultForumParams().Requests != 30000 {
		t.Fatal("forum default requests")
	}
	if workload.DefaultHotCRPParams().Papers != 269 {
		t.Fatal("hotcrp default papers")
	}
}
