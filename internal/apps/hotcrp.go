package apps

// HotCRP is the conference-review application (§5: the SIGCOMM 2009
// workload — 269 papers, 58 reviewers, 820 reviews). Authors submit and
// repeatedly update papers; reviewers file reviews (two versions each)
// and browse paper pages. Review submission uses a transaction touching
// the reviews and papers tables atomically.
func HotCRP() *App {
	return withFramework(&App{
		Name: "hotcrp",
		Schema: []string{
			`CREATE TABLE papers (id INT PRIMARY KEY AUTOINCREMENT, title TEXT, abstract TEXT, author TEXT, updated INT, nreviews INT)`,
			`CREATE TABLE reviews (id INT PRIMARY KEY AUTOINCREMENT, paper_id INT, reviewer TEXT, score INT, body TEXT, version INT)`,
		},
		Sources: map[string]string{
			"crplib": crpLib,
			// submit creates or updates a paper submission.
			"submit": `
$author = $_COOKIE["user"];
$title = $_POST["title"];
$abstract = $_POST["abstract"];
$now = time();
$rows = db_query("SELECT id FROM papers WHERE title = " . db_quote($title) . " AND author = " . db_quote($author));
if (count($rows) == 0) {
  $r = db_exec("INSERT INTO papers (title, abstract, author, updated, nreviews) VALUES ("
    . db_quote($title) . ", " . db_quote($abstract) . ", " . db_quote($author) . ", " . $now . ", 0)");
  echo crp_page("Submitted", "<p>Paper #" . $r["insert_id"] . " received.</p>");
} else {
  $pid = $rows[0]["id"];
  db_exec("UPDATE papers SET abstract = " . db_quote($abstract) . ", updated = " . $now . " WHERE id = " . $pid);
  echo crp_page("Updated", "<p>Paper #" . $pid . " updated.</p>");
}
`,
			// paper renders a paper with its reviews (latest versions).
			"paper": `
$pid = intval($_GET["p"]);
$rows = db_query("SELECT id, title, abstract, author, nreviews FROM papers WHERE id = " . $pid);
if (count($rows) == 0) {
  echo crp_page("Error", "<p>No such paper.</p>");
} else {
  $paper = $rows[0];
  $body = "<h2>" . htmlspecialchars($paper["title"]) . "</h2>"
        . "<div class='abstract'>" . htmlspecialchars($paper["abstract"]) . "</div>";
  $revs = db_query("SELECT reviewer, score, body, version FROM reviews WHERE paper_id = " . $pid . " ORDER BY id");
  $latest = [];
  foreach ($revs as $rv) {
    $latest[$rv["reviewer"]] = $rv;
  }
  $body .= "<div class='reviews'>";
  $total = 0; $n = 0;
  foreach ($latest as $who => $rv) {
    $body .= crp_review($who, $rv["score"], $rv["body"], $rv["version"]);
    $total += $rv["score"]; $n++;
  }
  $avg = $n > 0 ? sprintf("%.2f", $total / $n) : "n/a";
  $body .= "</div><div class='avg'>average score: " . $avg . " over " . $n . " review(s)</div>";
  echo crp_page("Paper #" . $pid, $body);
}
`,
			// review files (or revises) a review inside a transaction.
			"review": `
$who = $_COOKIE["user"];
$pid = intval($_POST["p"]);
$score = intval($_POST["score"]);
$text = $_POST["text"];
$rows = db_query("SELECT id, version FROM reviews WHERE paper_id = " . $pid . " AND reviewer = " . db_quote($who) . " ORDER BY version DESC LIMIT 1");
if (count($rows) == 0) {
  db_transaction([
    "INSERT INTO reviews (paper_id, reviewer, score, body, version) VALUES (" . $pid . ", " . db_quote($who) . ", " . $score . ", " . db_quote($text) . ", 1)",
    "UPDATE papers SET nreviews = nreviews + 1 WHERE id = " . $pid
  ]);
  echo crp_page("Review filed", "<p>Review v1 for paper #" . $pid . " recorded.</p>");
} else {
  $v = $rows[0]["version"] + 1;
  db_exec("INSERT INTO reviews (paper_id, reviewer, score, body, version) VALUES (" . $pid . ", " . db_quote($who) . ", " . $score . ", " . db_quote($text) . ", " . $v . ")");
  echo crp_page("Review revised", "<p>Review v" . $v . " for paper #" . $pid . " recorded.</p>");
}
`,
			// search lists papers whose titles match a prefix.
			"crpsearch": `
$q = $_GET["q"];
$rows = db_query("SELECT id, title, nreviews FROM papers WHERE title LIKE " . db_quote($q . "%") . " ORDER BY id LIMIT 30");
$body = "<ul class='papers'>";
foreach ($rows as $row) {
  $body .= "<li><a href='/paper?p=" . $row["id"] . "'>" . htmlspecialchars($row["title"]) . "</a> (" . $row["nreviews"] . " reviews)</li>";
}
$body .= "</ul>";
echo crp_page("Search", $body);
`,
			// reviewerhome shows a reviewer their filed reviews.
			"reviewerhome": `
$who = $_COOKIE["user"];
$revs = db_query("SELECT paper_id, score, version FROM reviews WHERE reviewer = " . db_quote($who) . " ORDER BY paper_id, version");
$body = "<table class='myreviews'>";
$done = [];
foreach ($revs as $rv) {
  $done[$rv["paper_id"]] = $rv;
}
foreach ($done as $pid => $rv) {
  $body .= "<tr><td>#" . $pid . "</td><td>score " . $rv["score"] . "</td><td>v" . $rv["version"] . "</td></tr>";
}
$body .= "</table><p>" . count($done) . " paper(s) reviewed</p>";
echo crp_page("Reviewer home", $body);
`,
		},
	}, "hotcrp")
}

const crpLib = `
// crp_page wraps content in the site chrome; like HotCRP's layout code,
// it performs the same rendering for every request, which the verifier's
// grouped re-execution collapses (§5.2).
function crp_page($title, $body) {
  $out = "<html><head><title>" . htmlspecialchars($title) . " - OroCRP</title>";
  $out .= "<meta charset='utf-8' /><meta name='robots' content='noindex' />";
  foreach (["style.css", "scorechart.css", "print.css"] as $css) {
    $out .= "<link rel='stylesheet' href='/assets/" . $css . "' />";
  }
  $out .= "</head><body class='crp'>";
  $out .= "<div id='header'><h1>OroCRP</h1><h2>" . htmlspecialchars($title) . "</h2>";
  $tabs = ["home" => "Home", "search" => "Search", "settings" => "Settings", "profile" => "Profile", "signout" => "Sign out"];
  $out .= "<ul id='tabs'>";
  foreach ($tabs as $href => $label) {
    $out .= "<li class='tab-" . $href . "'><a href='/" . $href . "'>" . $label . "</a></li>";
  }
  $out .= "</ul></div>";
  $out .= "<div id='main'>" . $body . "</div>";
  $out .= "<div id='footer'><ul class='foot'>";
  foreach (["Deadlines", "Help", "Report a bug", "Conference site"] as $i => $l) {
    $out .= "<li id='f" . $i . "'>" . str_replace(" ", "&nbsp;", $l) . "</li>";
  }
  $out .= "</ul>OroCRP review system</div></body></html>";
  return $out;
}

function crp_review($who, $score, $body, $version) {
  return "<div class='review'><span class='who'>" . htmlspecialchars($who) . "</span>"
       . "<span class='score'>score: " . $score . "</span>"
       . "<span class='ver'>v" . $version . "</span>"
       . "<div class='text'>" . nl2br(htmlspecialchars($body)) . "</div></div>";
}
`
