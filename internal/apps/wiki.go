package apps

// Wiki is the MediaWiki-like application (§5: "a wiki used by Wikipedia
// and others"). The read path caches rendered pages in the APC-style
// key-value store, as the paper's modified MediaWiki does (§5.4), which
// makes the view workload highly deduplicable. The edit path updates the
// page row, appends a revision, and invalidates the cache.
func Wiki() *App {
	return withFramework(&App{
		Name: "wiki",
		Schema: []string{
			`CREATE TABLE pages (id INT PRIMARY KEY AUTOINCREMENT, title TEXT, body TEXT, touched INT)`,
			`CREATE TABLE revisions (id INT PRIMARY KEY AUTOINCREMENT, page_id INT, body TEXT, editor TEXT, created INT)`,
		},
		Sources: map[string]string{
			"lib": wikiLib,
			// view renders a page, serving from the APC cache when warm.
			"view": `
$title = $_GET["page"];
$cached = apc_get("page:" . $title);
if (is_array($cached)) {
  echo wiki_header($title);
  echo $cached["html"];
  echo wiki_footer($cached["rev"]);
} else {
  $rows = db_query("SELECT id, body, touched FROM pages WHERE title = " . db_quote($title));
  if (count($rows) == 0) {
    echo wiki_header($title);
    echo "<p class='missing'>This page does not exist yet.</p>";
    echo wiki_footer(0);
  } else {
    $page = $rows[0];
    $html = wiki_render($page["body"]);
    apc_set("page:" . $title, ["html" => $html, "rev" => $page["touched"]]);
    echo wiki_header($title);
    echo $html;
    echo wiki_footer($page["touched"]);
  }
}
`,
			// edit creates or updates a page, appends a revision, and
			// invalidates the render cache.
			"edit": `
$title = $_POST["page"];
$body = $_POST["text"];
$editor = isset($_COOKIE["user"]) ? $_COOKIE["user"] : "anonymous";
$now = time();
$rows = db_query("SELECT id FROM pages WHERE title = " . db_quote($title));
if (count($rows) == 0) {
  $r = db_exec("INSERT INTO pages (title, body, touched) VALUES (" . db_quote($title) . ", " . db_quote($body) . ", " . $now . ")");
  $pid = $r["insert_id"];
} else {
  $pid = $rows[0]["id"];
  db_exec("UPDATE pages SET body = " . db_quote($body) . ", touched = " . $now . " WHERE id = " . $pid);
}
db_exec("INSERT INTO revisions (page_id, body, editor, created) VALUES (" . $pid . ", " . db_quote($body) . ", " . db_quote($editor) . ", " . $now . ")");
apc_set("page:" . $title, null);
echo wiki_header($title);
echo "<p class='saved'>Saved revision of " . htmlspecialchars($title) . " by " . htmlspecialchars($editor) . ".</p>";
echo wiki_footer($now);
`,
			// history lists a page's revisions.
			"history": `
$title = $_GET["page"];
$rows = db_query("SELECT id FROM pages WHERE title = " . db_quote($title));
echo wiki_header($title . " - history");
if (count($rows) == 0) {
  echo "<p class='missing'>No such page.</p>";
} else {
  $revs = db_query("SELECT id, editor, created FROM revisions WHERE page_id = " . $rows[0]["id"] . " ORDER BY id DESC LIMIT 50");
  echo "<ol class='history'>";
  foreach ($revs as $rev) {
    echo "<li>rev " . $rev["id"] . " by " . htmlspecialchars($rev["editor"]) . " at " . $rev["created"] . "</li>";
  }
  echo "</ol>";
}
echo wiki_footer(0);
`,
			// search matches page titles by prefix.
			"search": `
$q = $_GET["q"];
echo wiki_header("Search");
$rows = db_query("SELECT title FROM pages WHERE title LIKE " . db_quote($q . "%") . " ORDER BY title LIMIT 20");
echo "<ul class='results'>";
foreach ($rows as $row) {
  echo "<li><a href='/view?page=" . htmlspecialchars($row["title"]) . "'>" . htmlspecialchars($row["title"]) . "</a></li>";
}
echo "</ul>";
echo "<p>" . count($rows) . " result(s)</p>";
echo wiki_footer(0);
`,
			// recent lists the latest edits across all pages.
			"recent": `
echo wiki_header("Recent changes");
$revs = db_query("SELECT page_id, editor, created FROM revisions ORDER BY id DESC LIMIT 25");
echo "<ul class='recent'>";
foreach ($revs as $rev) {
  echo "<li>page " . $rev["page_id"] . " edited by " . htmlspecialchars($rev["editor"]) . "</li>";
}
echo "</ul>";
echo wiki_footer(0);
`,
		},
	}, "wiki")
}

// wikiLib holds shared rendering helpers (a separate "include file").
// The header/footer chrome deliberately does substantial work — menus,
// sidebar, toolbox, styles — because that is what real wiki skins do,
// and it is exactly the repeated computation that SIMD-on-demand
// deduplicates across a control-flow group (§3.1, §5.2: "different
// users wind up seeing similar-looking web pages").
const wikiLib = `
function wiki_nav_items() {
  return [
    "Main_Page" => "Main page",
    "Recent" => "Recent changes",
    "Random" => "Random page",
    "Help" => "Help",
    "About" => "About OroWiki",
    "Community" => "Community portal",
    "Sandbox" => "Sandbox",
  ];
}

function wiki_toolbox() {
  return ["What links here", "Related changes", "Special pages",
          "Printable version", "Permanent link", "Page information"];
}

function wiki_header($title) {
  $out = "<html><head><title>" . htmlspecialchars($title) . " - OroWiki</title>";
  $out .= "<meta charset='utf-8' /><meta name='generator' content='OroWiki 1.0' />";
  foreach (["screen" => "main.css", "print" => "print.css", "handheld" => "mobile.css"] as $media => $css) {
    $out .= "<link rel='stylesheet' media='" . $media . "' href='/static/" . $css . "' />";
  }
  $out .= "</head><body class='skin-oro'>";
  $out .= "<div id='banner'><h1>" . htmlspecialchars($title) . "</h1></div>";
  $out .= "<div id='sidebar'><ul class='nav'>";
  foreach (wiki_nav_items() as $target => $label) {
    $out .= "<li class='nav-item'><a accesskey='" . strtolower(substr($label, 0, 1))
          . "' href='/view?page=" . $target . "'>" . htmlspecialchars($label) . "</a></li>";
  }
  $out .= "</ul><div class='toolbox'><h3>Tools</h3><ul>";
  foreach (wiki_toolbox() as $i => $tool) {
    $out .= "<li id='t-" . $i . "'>" . htmlspecialchars($tool) . "</li>";
  }
  $out .= "</ul></div></div><div id='content'>";
  return $out;
}

function wiki_footer($rev) {
  $tag = $rev > 0 ? "<span class='rev'>as of " . $rev . "</span>" : "";
  $out = "</div><div id='footer'>" . $tag;
  $links = ["Privacy policy", "About", "Disclaimers", "Code of conduct", "Developers", "Statistics"];
  $out .= "<ul class='footer-places'>";
  foreach ($links as $l) {
    $out .= "<li>" . str_replace(" ", "&nbsp;", $l) . "</li>";
  }
  $out .= "</ul><p class='license'>Content is available under "
        . "a free license unless otherwise noted. OroWiki is a demonstration "
        . "application for deduplicated re-execution.</p>";
  $out .= "Powered by OroWiki</div></body></html>";
  return $out;
}

// wiki_render converts the lightweight markup to HTML: ''bold'',
// [[links]], == headings ==, and * list items, line by line.
function wiki_render($src) {
  $out = "";
  $lines = explode("\n", $src);
  $inlist = false;
  foreach ($lines as $line) {
    $t = trim($line);
    if ($t == "") {
      continue;
    }
    $item = substr($t, 0, 2) == "* ";
    if ($item && !$inlist) { $out .= "<ul>"; $inlist = true; }
    if (!$item && $inlist) { $out .= "</ul>"; $inlist = false; }
    if (substr($t, 0, 2) == "==") {
      $out .= "<h2>" . htmlspecialchars(trim(str_replace("==", "", $t))) . "</h2>";
    } elseif ($item) {
      $out .= "<li>" . wiki_inline(substr($t, 2)) . "</li>";
    } else {
      $out .= "<p>" . wiki_inline($t) . "</p>";
    }
  }
  if ($inlist) { $out .= "</ul>"; }
  return $out;
}

function wiki_inline($text) {
  $html = htmlspecialchars($text);
  $html = str_replace("&#039;&#039;", "<b>", $html);
  while (strpos($html, "[[") !== false && strpos($html, "]]") !== false) {
    $a = strpos($html, "[[");
    $b = strpos($html, "]]");
    if ($b < $a) { break; }
    $target = substr($html, $a + 2, $b - $a - 2);
    $html = substr($html, 0, $a) . "<a href='/view?page=" . $target . "'>" . $target . "</a>" . substr($html, $b + 2);
  }
  return $html;
}
`
