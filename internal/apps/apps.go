// Package apps contains the three applications used in the paper's
// evaluation (§5), rewritten for this reproduction's application
// language: a MediaWiki-like wiki, a phpBB-like forum, and a HotCRP-like
// conference review system. Each exercises the object mix its original
// does — the wiki leans on the APC-style cache and is read-dominated,
// the forum mixes sessions with per-view counter writes, and the review
// system is transaction-heavy.
package apps

import (
	"fmt"
	"strings"

	"orochi/internal/lang"
)

// App bundles an application's sources and database schema.
type App struct {
	Name string
	// Sources maps script name -> source (the "PHP files").
	Sources map[string]string
	// Schema is the CREATE TABLE DDL executed at provisioning time.
	Schema []string
}

// Compile parses the application through the content-keyed program
// cache (lang.CompileCached): every component of a process — server,
// verifier, epoch auditor, benchmarks — that compiles the same sources
// shares one *lang.Program, and with it the compiled engine's
// once-lowered closure form.
func (a *App) Compile() *lang.Program {
	p, err := lang.CompileCached(a.Sources)
	if err != nil {
		panic(fmt.Sprintf("apps: %s does not compile: %v", a.Name, err))
	}
	return p
}

// withFramework installs the shared framework include and prepends the
// per-request bootstrap (fw_boot + route dispatch) to every entry-point
// script, the way index.php bootstraps a real PHP application. Library
// files (names containing "lib") hold only function declarations and are
// left untouched.
func withFramework(app *App, bootArg string) *App {
	app.Sources["framework"] = frameworkSrc
	for name, src := range app.Sources {
		if name == "framework" || strings.Contains(name, "lib") {
			continue
		}
		app.Sources[name] = `$fw_cfg = fw_boot("` + bootArg + `");
$fw_disp = fw_route("` + name + `");
` + src
	}
	return app
}

// All returns the three applications.
func All() []*App {
	return []*App{Wiki(), Forum(), HotCRP()}
}

// ByName returns the named application or nil.
func ByName(name string) *App {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
