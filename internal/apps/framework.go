package apps

// frameworkSrc is the shared "framework" include compiled into each
// application: per-request bootstrapping of configuration, routing
// tables, permission maps, and localization — the kind of work that
// dominates real PHP frameworks (MediaWiki initializes tens of
// thousands of lines of setup per request). This work is identical
// across requests, so under SIMD-on-demand it executes univalently once
// per control-flow group: it is the realistic source of the high α
// values in Fig. 11 and, with it, the audit speedup of Fig. 8.
//
// Every script calls fw_boot() first and helpers consult the globals it
// populates.
const frameworkSrc = `
function fw_boot($appname) {
  global $fw_config, $fw_routes, $fw_perms, $fw_msgs;
  $fw_config = fw_build_config($appname);
  $fw_routes = fw_build_routes();
  $fw_perms = fw_build_permissions();
  $fw_msgs = fw_build_messages();
  return $fw_config;
}

function fw_build_config($appname) {
  $defaults = [
    "sitename" => "OroSite",
    "server" => "https://example.org",
    "script_path" => "/w",
    "article_path" => "/view",
    "upload_path" => "/uploads",
    "style_version" => 303,
    "cache_epoch" => 20170101000000,
    "rate_limit" => 90,
    "max_upload" => 4194304,
    "thumb_sizes" => [120, 150, 180, 200, 250, 300],
    "namespaces" => ["", "Talk", "User", "User_talk", "Project", "Help", "Category"],
    "read_only" => false,
    "lang" => "en",
    "debug" => false,
  ];
  $overrides = [
    "sitename" => "Oro" . ucfirst($appname),
    "emergency_contact" => $appname . "-admin@example.org",
  ];
  $cfg = [];
  foreach ($defaults as $k => $v) {
    $cfg[$k] = $v;
  }
  foreach ($overrides as $k => $v) {
    $cfg[$k] = $v;
  }
  // Derived settings, as frameworks compute on every request.
  $cfg["canonical_server"] = str_replace("https://", "//", $cfg["server"]);
  $cfg["load_script"] = $cfg["script_path"] . "/load.php?v=" . $cfg["style_version"];
  $cfg["api_script"] = $cfg["script_path"] . "/api.php";
  $sizes = "";
  foreach ($cfg["thumb_sizes"] as $s) {
    $sizes .= ($sizes == "" ? "" : ",") . $s;
  }
  $cfg["thumb_size_list"] = $sizes;
  $nsmap = [];
  foreach ($cfg["namespaces"] as $i => $ns) {
    $nsmap[strtolower($ns)] = $i * 2;
  }
  $cfg["ns_map"] = $nsmap;
  return $cfg;
}

function fw_build_routes() {
  $raw = [
    "view" => "PageController@show",
    "edit" => "PageController@edit",
    "history" => "PageController@history",
    "search" => "SearchController@query",
    "recent" => "ChangesController@recent",
    "index" => "BoardController@index",
    "viewtopic" => "TopicController@show",
    "reply" => "TopicController@reply",
    "newtopic" => "TopicController@create",
    "login" => "AuthController@login",
    "submit" => "PaperController@submit",
    "paper" => "PaperController@show",
    "review" => "ReviewController@file",
    "crpsearch" => "PaperController@search",
    "reviewerhome" => "ReviewController@home",
  ];
  $routes = [];
  foreach ($raw as $path => $handler) {
    $at = strpos($handler, "@");
    $routes[$path] = [
      "controller" => substr($handler, 0, $at),
      "action" => substr($handler, $at + 1),
      "middleware" => ["session", "csrf", "throttle:" . strlen($path)],
    ];
  }
  return $routes;
}

function fw_build_permissions() {
  $roles = ["guest", "user", "moderator", "admin"];
  $actions = ["read", "create", "edit", "delete", "move", "protect", "block", "import"];
  $perms = [];
  foreach ($roles as $ri => $role) {
    $grants = [];
    foreach ($actions as $ai => $action) {
      // Higher roles accumulate rights, as in MediaWiki's group model.
      $grants[$action] = $ai <= $ri * 2 + 1;
    }
    $perms[$role] = $grants;
  }
  return $perms;
}

function fw_build_messages() {
  $en = [
    "search" => "Search", "go" => "Go", "history" => "History",
    "edit" => "Edit", "talk" => "Discussion", "watch" => "Watch",
    "login" => "Log in", "logout" => "Log out", "preferences" => "Preferences",
    "contributions" => "Contributions", "whatlinkshere" => "What links here",
    "printable" => "Printable version", "permalink" => "Permanent link",
    "lastmodified" => "This page was last edited", "jumpto" => "Jump to",
    "navigation" => "Navigation", "toolbox" => "Tools", "views" => "Views",
  ];
  $msgs = [];
  foreach ($en as $k => $v) {
    $msgs["en:" . $k] = $v;
    $msgs["en-gb:" . $k] = $v; // fallback chain materialization
  }
  return $msgs;
}

// fw_msg resolves a localized message with fallback, like wfMessage().
function fw_msg($key) {
  global $fw_msgs, $fw_config;
  $lang = $fw_config["lang"];
  if (isset($fw_msgs[$lang . ":" . $key])) {
    return $fw_msgs[$lang . ":" . $key];
  }
  if (isset($fw_msgs["en:" . $key])) {
    return $fw_msgs["en:" . $key];
  }
  return "<" . $key . ">";
}

// fw_can checks a permission for a role.
function fw_can($role, $action) {
  global $fw_perms;
  if (!isset($fw_perms[$role])) {
    return false;
  }
  $grants = $fw_perms[$role];
  return isset($grants[$action]) ? $grants[$action] : false;
}

// fw_route resolves the dispatch entry for a path, running the
// middleware name computation frameworks do per request.
function fw_route($path) {
  global $fw_routes;
  if (!isset($fw_routes[$path])) {
    return ["controller" => "NotFound", "action" => "show", "middleware" => []];
  }
  $r = $fw_routes[$path];
  $chain = "";
  foreach ($r["middleware"] as $m) {
    $chain .= "|" . $m;
  }
  $r["chain"] = $chain;
  return $r;
}
`
