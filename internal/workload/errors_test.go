package workload

import (
	"strings"
	"testing"

	"orochi/internal/server"
	"orochi/internal/verifier"
)

func TestWithErrorsDeterministicMix(t *testing.T) {
	base := Wiki(WikiParams{Requests: 400, Pages: 10, ZipfS: 0.53, Seed: 11})
	p := ErrorMixParams{Rate: 0.1, Seed: 11}
	w1 := WithErrors(base, p)
	w2 := WithErrors(Wiki(WikiParams{Requests: 400, Pages: 10, ZipfS: 0.53, Seed: 11}), p)
	counts := map[string]int{}
	for i := range w1.Requests {
		if w1.Requests[i].Script != w2.Requests[i].Script {
			t.Fatalf("request %d differs across same-seed builds", i)
		}
		counts[w1.Requests[i].Script]++
	}
	for _, s := range []string{ErrorUnknownScript, ErrorUndefinedFn, ErrorBadSQL} {
		if counts[s] == 0 {
			t.Fatalf("error mix contains no %q requests: %v", s, counts)
		}
	}
	if counts["view"] == 0 {
		t.Fatal("error mix must keep successful requests")
	}
	if w1.App.Name != "wiki+errors" {
		t.Fatalf("app name = %q", w1.App.Name)
	}
	// The base workload and app are untouched.
	if _, ok := base.App.Sources[ErrorUndefinedFn]; ok {
		t.Fatal("WithErrors mutated the base app")
	}
}

func TestWithErrorsServesAndAudits(t *testing.T) {
	// End to end: a period mixing successful and faulted wiki requests
	// serves (faults become canonical 500s) and audits ACCEPT.
	w := WithErrors(Wiki(WikiParams{Requests: 60, Pages: 5, ZipfS: 0.53, Seed: 5}),
		ErrorMixParams{Rate: 0.2, Seed: 5})
	prog := w.App.Compile()
	srv := server.New(prog, server.Options{Record: true})
	if err := srv.Setup(w.App.Schema); err != nil {
		t.Fatal(err)
	}
	if err := srv.Setup(w.Seed); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	srv.ServeAll(w.Requests, 4)

	faulted := 0
	for _, ev := range srv.Trace().Requests() {
		if body, ok := srv.Trace().ResponseOf(ev.RID); ok && strings.HasPrefix(body, "HTTP 500") {
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("error mix produced no faulted responses")
	}
	res, err := verifier.Audit(prog, srv.Trace(), srv.Reports(), snap, verifier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("honest faulted period must accept, got: %s", res.Reason)
	}
	if res.Stats.RequestsReplayed != len(w.Requests) {
		t.Fatalf("replayed %d of %d requests", res.Stats.RequestsReplayed, len(w.Requests))
	}
}
