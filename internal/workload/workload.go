// Package workload synthesizes the three evaluation workloads of §5 with
// the paper's parameters: a Wikipedia-derived page-view mix (Zipf with
// β = 0.53 over the page population), the CentOS-forum phpBB mix with a
// 1:40 registered-to-guest ratio, and the SIGCOMM 2009 HotCRP mix
// (papers with 1–20 uniform updates, 3 reviews per paper, two review
// versions per reviewer, reviewers browsing 100 pages each). Workloads
// scale by request count so tests use small instances and the benchmark
// harness uses paper-sized ones.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"orochi/internal/apps"
	"orochi/internal/trace"
)

// Workload is a ready-to-serve request stream for one application.
type Workload struct {
	App *apps.App
	// Seed is SQL executed before the audited period (beyond the schema).
	Seed []string
	// Requests is the audited request stream, in issue order.
	Requests []trace.Input
}

// Zipf samples ranks 1..n with probability proportional to 1/rank^s
// (inverse-CDF sampling over precomputed cumulative weights).
type Zipf struct {
	cum []float64
	rng *rand.Rand
}

// NewZipf builds a sampler over n items with exponent s.
func NewZipf(rng *rand.Rand, n int, s float64) *Zipf {
	cum := make([]float64, n)
	total := 0.0
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), s)
		cum[i-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, rng: rng}
}

// Next returns a rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// WikiParams sizes the wiki workload. The paper's instance: 20,000
// requests over 200 pages, Zipf β = 0.53 (§5, "MediaWiki").
type WikiParams struct {
	Requests int
	Pages    int
	ZipfS    float64
	Seed     int64
}

// DefaultWikiParams returns the paper's parameters.
func DefaultWikiParams() WikiParams {
	return WikiParams{Requests: 20000, Pages: 200, ZipfS: 0.53, Seed: 1}
}

// Wiki builds the MediaWiki-like workload: a read-dominated page-view
// stream (~92% views, 4% edits, and a tail of search/history/recent).
func Wiki(p WikiParams) *Workload {
	rng := rand.New(rand.NewSource(p.Seed))
	app := apps.Wiki()
	w := &Workload{App: app}
	// Seed the page population as pre-audit state.
	for i := 0; i < p.Pages; i++ {
		title := pageTitle(i)
		body := pageBody(rng, title)
		w.Seed = append(w.Seed,
			fmt.Sprintf("INSERT INTO pages (title, body, touched) VALUES (%s, %s, %d)",
				sqlQ(title), sqlQ(body), 1000000+i),
			fmt.Sprintf("INSERT INTO revisions (page_id, body, editor, created) VALUES (%d, %s, 'seed', %d)",
				i+1, sqlQ(body), 1000000+i),
		)
	}
	zipf := NewZipf(rng, p.Pages, p.ZipfS)
	editors := []string{"alice", "bob", "carol", "dave"}
	for i := 0; i < p.Requests; i++ {
		page := pageTitle(zipf.Next())
		r := rng.Float64()
		switch {
		case r < 0.92:
			w.Requests = append(w.Requests, trace.Input{
				Script: "view", Get: map[string]string{"page": page},
			})
		case r < 0.96:
			w.Requests = append(w.Requests, trace.Input{
				Script: "edit",
				Post:   map[string]string{"page": page, "text": pageBody(rng, page)},
				Cookie: map[string]string{"user": editors[rng.Intn(len(editors))]},
			})
		case r < 0.98:
			w.Requests = append(w.Requests, trace.Input{
				Script: "search", Get: map[string]string{"q": page[:4]},
			})
		case r < 0.99:
			w.Requests = append(w.Requests, trace.Input{
				Script: "history", Get: map[string]string{"page": page},
			})
		default:
			w.Requests = append(w.Requests, trace.Input{Script: "recent"})
		}
	}
	return w
}

func pageTitle(rank int) string {
	return fmt.Sprintf("Page_%03d", rank)
}

func pageBody(rng *rand.Rand, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	paras := 2 + rng.Intn(4)
	for p := 0; p < paras; p++ {
		fmt.Fprintf(&b, "Paragraph %d of %s discusses [[%s]] in depth.\n",
			p, title, pageTitle(rng.Intn(200)))
		if rng.Intn(2) == 0 {
			b.WriteString("* first point\n* second point\n")
		}
	}
	return b.String()
}

// ForumParams sizes the forum workload. The paper's instance: 30,000
// requests, 63 posts in the seed topic set, 83 users, guests:registered
// = 40:1 (§5, "phpBB").
type ForumParams struct {
	Requests int
	Topics   int
	Users    int
	// GuestRatio is the fraction of page views from guests (the paper's
	// 40:1 sampling => ~0.975).
	GuestRatio float64
	Seed       int64
}

// DefaultForumParams returns the paper's parameters (63 seed posts are
// modelled as ~20 topics with a few posts each).
func DefaultForumParams() ForumParams {
	return ForumParams{Requests: 30000, Topics: 21, Users: 83, GuestRatio: 40.0 / 41.0, Seed: 2}
}

// Forum builds the phpBB-like workload: logins up front, then a view
// stream from guests and registered users with occasional replies.
func Forum(p ForumParams) *Workload {
	rng := rand.New(rand.NewSource(p.Seed))
	app := apps.Forum()
	w := &Workload{App: app}
	for u := 0; u < p.Users; u++ {
		w.Seed = append(w.Seed, fmt.Sprintf(
			"INSERT INTO users (name, joined) VALUES (%s, %d)", sqlQ(userName(u)), 900000+u))
	}
	for t := 0; t < p.Topics; t++ {
		w.Seed = append(w.Seed, fmt.Sprintf(
			"INSERT INTO topics (title, views, replies, last_post) VALUES (%s, %d, %d, %d)",
			sqlQ(fmt.Sprintf("Topic %02d: installation questions", t)), rng.Intn(500), 3, 950000+t))
		for k := 0; k < 3; k++ {
			w.Seed = append(w.Seed, fmt.Sprintf(
				"INSERT INTO posts (topic_id, author, body, created) VALUES (%d, %s, %s, %d)",
				t+1, sqlQ(userName(rng.Intn(p.Users))),
				sqlQ(fmt.Sprintf("Seed post %d for topic %d.\nSecond line.", k, t)), 950000+t*10+k))
		}
	}
	// Registered users log in first (their replies need sessions).
	for u := 0; u < p.Users; u++ {
		w.Requests = append(w.Requests, trace.Input{
			Script: "login",
			Post:   map[string]string{"name": userName(u)},
			Cookie: map[string]string{"sid": sessionID(u)},
		})
	}
	// Topic popularity is skewed, like the CentOS forum's.
	zipf := NewZipf(rng, p.Topics, 1.0)
	for len(w.Requests) < p.Requests {
		tid := zipf.Next() + 1
		if rng.Float64() < p.GuestRatio {
			// Guests only browse.
			if rng.Float64() < 0.9 {
				w.Requests = append(w.Requests, trace.Input{
					Script: "viewtopic", Get: map[string]string{"t": fmt.Sprint(tid)},
				})
			} else {
				w.Requests = append(w.Requests, trace.Input{Script: "index"})
			}
			continue
		}
		u := rng.Intn(p.Users)
		switch {
		case rng.Float64() < 0.65:
			w.Requests = append(w.Requests, trace.Input{
				Script: "viewtopic", Get: map[string]string{"t": fmt.Sprint(tid)},
				Cookie: map[string]string{"sid": sessionID(u)},
			})
		case rng.Float64() < 0.9:
			w.Requests = append(w.Requests, trace.Input{
				Script: "reply",
				Post: map[string]string{
					"t":    fmt.Sprint(tid),
					"body": fmt.Sprintf("Reply from %s about topic %d.\nWorks for me.", userName(u), tid),
				},
				Cookie: map[string]string{"sid": sessionID(u)},
			})
		default:
			w.Requests = append(w.Requests, trace.Input{
				Script: "index", Cookie: map[string]string{"sid": sessionID(u)},
			})
		}
	}
	w.Requests = w.Requests[:p.Requests]
	return w
}

func userName(u int) string  { return fmt.Sprintf("user%03d", u) }
func sessionID(u int) string { return fmt.Sprintf("sid-%03d", u) }

// HotCRPParams sizes the review workload. The paper's instance: 269
// papers, 58 reviewers, 820 reviews, ~52k requests with 1–20 uniform
// paper updates, two versions per review, and 100 page views per
// reviewer (§5, "HotCRP").
type HotCRPParams struct {
	Papers    int
	Reviewers int
	// UpdatesMax bounds the uniform [1, UpdatesMax] paper updates.
	UpdatesMax int
	// ReviewsPerPaper assigns this many reviewers per paper.
	ReviewsPerPaper int
	// ViewsPerReviewer is each reviewer's page-view count.
	ViewsPerReviewer int
	Seed             int64
}

// DefaultHotCRPParams returns the paper's parameters. The paper states
// 52k requests in all; with 269 papers × (1 + U[1,20]) submissions and
// 820 reviews × 2 versions, that implies roughly 815 page views per
// reviewer, which is what we use (the stated "100 pages" alone would
// total only ~10k requests).
func DefaultHotCRPParams() HotCRPParams {
	return HotCRPParams{
		Papers: 269, Reviewers: 58, UpdatesMax: 20,
		ReviewsPerPaper: 3, ViewsPerReviewer: 815, Seed: 3,
	}
}

// HotCRP builds the review workload: submissions (with updates), then
// review rounds (two versions), then reviewer browsing, interleaved
// deterministically but shuffled within phases.
func HotCRP(p HotCRPParams) *Workload {
	rng := rand.New(rand.NewSource(p.Seed))
	app := apps.HotCRP()
	w := &Workload{App: app}

	var submits, reviews, views []trace.Input
	for i := 0; i < p.Papers; i++ {
		author := fmt.Sprintf("author%03d", i)
		title := fmt.Sprintf("Paper %03d: systems for auditing", i)
		updates := 1 + rng.Intn(p.UpdatesMax)
		for u := 0; u <= updates; u++ {
			submits = append(submits, trace.Input{
				Script: "submit",
				Post: map[string]string{
					"title":    title,
					"abstract": fmt.Sprintf("Abstract v%d of %s. %s", u, title, loremSentence(rng)),
				},
				Cookie: map[string]string{"user": author},
			})
		}
	}
	for i := 0; i < p.Papers; i++ {
		for r := 0; r < p.ReviewsPerPaper; r++ {
			who := fmt.Sprintf("rev%02d", (i*p.ReviewsPerPaper+r)%p.Reviewers)
			for v := 0; v < 2; v++ {
				reviews = append(reviews, trace.Input{
					Script: "review",
					Post: map[string]string{
						"p":     fmt.Sprint(i + 1),
						"score": fmt.Sprint(1 + rng.Intn(5)),
						"text":  reviewText(rng, i, v),
					},
					Cookie: map[string]string{"user": who},
				})
			}
		}
	}
	for r := 0; r < p.Reviewers; r++ {
		who := fmt.Sprintf("rev%02d", r)
		for v := 0; v < p.ViewsPerReviewer; v++ {
			if v%10 == 9 {
				views = append(views, trace.Input{
					Script: "reviewerhome", Cookie: map[string]string{"user": who},
				})
				continue
			}
			views = append(views, trace.Input{
				Script: "paper",
				Get:    map[string]string{"p": fmt.Sprint(1 + rng.Intn(p.Papers))},
				Cookie: map[string]string{"user": who},
			})
		}
	}
	rng.Shuffle(len(submits), func(i, j int) { submits[i], submits[j] = submits[j], submits[i] })
	rng.Shuffle(len(reviews), func(i, j int) { reviews[i], reviews[j] = reviews[j], reviews[i] })
	rng.Shuffle(len(views), func(i, j int) { views[i], views[j] = views[j], views[i] })
	w.Requests = append(w.Requests, submits...)
	w.Requests = append(w.Requests, reviews...)
	w.Requests = append(w.Requests, views...)
	return w
}

// Scale returns a copy of the params shrunk by factor (>= 1), for tests
// and in-CI benchmarks.
func (p WikiParams) Scale(factor int) WikiParams {
	if factor <= 1 {
		return p
	}
	p.Requests /= factor
	if p.Pages > 20 {
		p.Pages /= min(factor, 4)
	}
	return p
}

// Scale shrinks the forum workload by factor.
func (p ForumParams) Scale(factor int) ForumParams {
	if factor <= 1 {
		return p
	}
	p.Requests /= factor
	if p.Users > 10 {
		p.Users /= min(factor, 8)
	}
	return p
}

// Scale shrinks the review workload by factor.
func (p HotCRPParams) Scale(factor int) HotCRPParams {
	if factor <= 1 {
		return p
	}
	p.Papers /= factor
	if p.Papers < 3 {
		p.Papers = 3
	}
	p.Reviewers /= factor
	if p.Reviewers < 3 {
		p.Reviewers = 3
	}
	p.ViewsPerReviewer /= factor
	if p.ViewsPerReviewer < 5 {
		p.ViewsPerReviewer = 5
	}
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ErrorMixParams configures fault injection into an existing workload.
// Real web workloads contain failing requests — typo'd URLs, handlers
// hitting missing helpers, queries against dropped tables — and the
// audit must stay complete across them, so every workload can opt into
// a deterministic sprinkling of faults.
type ErrorMixParams struct {
	// Rate is the fraction of requests replaced by faulting ones.
	Rate float64
	Seed int64
}

// Faulting entry points injected by WithErrors. ErrorUnknownScript
// never exists in any app (an unknown-script fault); the other two are
// added to the app's sources and fault at runtime.
const (
	ErrorUnknownScript = "nosuchscript"
	ErrorUndefinedFn   = "brokenfn"
	ErrorBadSQL        = "brokensql"
)

// errorSources are the faulting scripts WithErrors grafts onto the app:
// a call to an undefined function, and a query against a missing table
// whose false result is then iterated (the PHP-API idiom for unchecked
// SQL failure).
var errorSources = map[string]string{
	ErrorUndefinedFn: `$q = $_GET["q"];
echo "about to fail ";
undefined_helper($q);
echo "unreached";
`,
	ErrorBadSQL: `$rows = db_query("SELECT nothing FROM missing_table");
foreach ($rows as $row) {
  echo "unreached";
}
echo "fine";
`,
}

// WithErrorScripts returns a copy of app extended with the faulting
// entry points, under a derived name so program caching stays coherent.
// The serving side uses it through WithErrors; the offline auditor
// (cmd/orochi-audit) uses it directly, because it must re-execute the
// same program the fault-injecting serve run deployed.
func WithErrorScripts(app *apps.App) *apps.App {
	src := make(map[string]string, len(app.Sources)+len(errorSources))
	for k, v := range app.Sources {
		src[k] = v
	}
	for k, v := range errorSources {
		src[k] = v
	}
	return &apps.App{
		Name:    app.Name + "+errors",
		Sources: src,
		Schema:  append([]string(nil), app.Schema...),
	}
}

// WithErrors returns a copy of w whose request stream deterministically
// mixes in faulting requests — an unknown script, an undefined-function
// call, and a bad-SQL handler, in rotation — and whose application is
// extended with the faulting scripts. Seed SQL is unchanged.
func WithErrors(w *Workload, p ErrorMixParams) *Workload {
	out := &Workload{
		App:      WithErrorScripts(w.App),
		Seed:     append([]string(nil), w.Seed...),
		Requests: append([]trace.Input(nil), w.Requests...),
	}
	faults := []trace.Input{
		{Script: ErrorUnknownScript},
		{Script: ErrorUndefinedFn, Get: map[string]string{"q": "x"}},
		{Script: ErrorBadSQL},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	k := 0
	for i := range out.Requests {
		if rng.Float64() < p.Rate {
			out.Requests[i] = faults[k%len(faults)]
			k++
		}
	}
	return out
}

// The 3625-character average review length of SIGCOMM 2009 is
// approximated with repeated sentences.
func reviewText(rng *rand.Rand, paper, version int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Review v%d of paper %d.\n", version+1, paper+1)
	for b.Len() < 3400+rng.Intn(500) {
		b.WriteString(loremSentence(rng))
		b.WriteByte('\n')
	}
	return b.String()
}

var loremWords = []string{
	"the", "paper", "presents", "an", "interesting", "approach", "to",
	"verifying", "outsourced", "execution", "with", "untrusted", "reports",
	"and", "replay", "however", "evaluation", "could", "be", "stronger",
	"baseline", "comparison", "would", "help", "overall", "solid", "work",
}

func loremSentence(rng *rand.Rand) string {
	n := 8 + rng.Intn(10)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = loremWords[rng.Intn(len(loremWords))]
	}
	return strings.Join(parts, " ") + "."
}

// sqlQ quotes a string for the sqlmini dialect.
func sqlQ(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
