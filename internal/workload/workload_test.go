package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		r := z.Next()
		if r < 0 || r >= 100 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// With s=1, p(rank 1)/p(rank 10) = 10.
	ratio := float64(counts[0]) / float64(counts[9])
	if ratio < 5 || ratio > 20 {
		t.Fatalf("zipf ratio rank1/rank10 = %.2f, want ~10", ratio)
	}
	// Monotone-ish decrease over decades.
	if counts[0] < counts[50] {
		t.Fatal("zipf must be decreasing")
	}
}

func TestZipfFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 10, 0.0) // s=0: uniform
	counts := make([]int, 10)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		dev := math.Abs(float64(c)-float64(n)/10) / (float64(n) / 10)
		if dev > 0.15 {
			t.Fatalf("s=0 should be uniform; rank %d deviates %.2f", i, dev)
		}
	}
}

func TestWikiWorkloadDeterministic(t *testing.T) {
	p := WikiParams{Requests: 100, Pages: 10, ZipfS: 0.53, Seed: 42}
	w1 := Wiki(p)
	w2 := Wiki(p)
	if len(w1.Requests) != len(w2.Requests) {
		t.Fatal("length mismatch")
	}
	for i := range w1.Requests {
		a, b := w1.Requests[i], w2.Requests[i]
		if a.Script != b.Script || a.Get["page"] != b.Get["page"] {
			t.Fatalf("request %d differs across same-seed builds", i)
		}
	}
	if len(w1.Seed) != len(w2.Seed) {
		t.Fatal("seed SQL differs")
	}
}

func TestWikiWorkloadMix(t *testing.T) {
	w := Wiki(WikiParams{Requests: 5000, Pages: 50, ZipfS: 0.53, Seed: 3})
	counts := map[string]int{}
	for _, in := range w.Requests {
		counts[in.Script]++
	}
	total := float64(len(w.Requests))
	if f := float64(counts["view"]) / total; f < 0.85 || f > 0.97 {
		t.Fatalf("view fraction = %.2f, want ~0.92", f)
	}
	if counts["edit"] == 0 || counts["search"] == 0 {
		t.Fatal("workload must include edits and searches")
	}
	// Every edit carries a user cookie.
	for _, in := range w.Requests {
		if in.Script == "edit" && in.Cookie["user"] == "" {
			t.Fatal("edit without editor cookie")
		}
	}
}

func TestForumWorkloadGuestRatio(t *testing.T) {
	p := ForumParams{Requests: 8000, Topics: 10, Users: 20, GuestRatio: 40.0 / 41.0, Seed: 4}
	w := Forum(p)
	guests, logged := 0, 0
	for _, in := range w.Requests {
		if in.Script == "login" {
			continue
		}
		if in.Cookie["sid"] == "" {
			guests++
		} else {
			logged++
		}
	}
	ratio := float64(guests) / float64(logged+1)
	if ratio < 20 || ratio > 80 {
		t.Fatalf("guest:registered = %.1f, want ~40", ratio)
	}
	// Logins come first so replies find their sessions.
	for i := 0; i < p.Users; i++ {
		if w.Requests[i].Script != "login" {
			t.Fatalf("request %d should be a login, got %s", i, w.Requests[i].Script)
		}
	}
}

func TestHotCRPWorkloadStructure(t *testing.T) {
	p := HotCRPParams{Papers: 10, Reviewers: 5, UpdatesMax: 4,
		ReviewsPerPaper: 2, ViewsPerReviewer: 10, Seed: 5}
	w := HotCRP(p)
	counts := map[string]int{}
	for _, in := range w.Requests {
		counts[in.Script]++
	}
	// Each paper: 1 + U[1,4] submissions => between 2*10 and 5*10.
	if counts["submit"] < 20 || counts["submit"] > 50 {
		t.Fatalf("submits = %d", counts["submit"])
	}
	// Reviews: papers * reviewsPer * 2 versions.
	if counts["review"] != 10*2*2 {
		t.Fatalf("reviews = %d, want 40", counts["review"])
	}
	if counts["paper"]+counts["reviewerhome"] != 5*10 {
		t.Fatalf("views = %d, want 50", counts["paper"]+counts["reviewerhome"])
	}
	// Review bodies approximate the SIGCOMM average length.
	for _, in := range w.Requests {
		if in.Script == "review" {
			if l := len(in.Post["text"]); l < 3000 || l > 4500 {
				t.Fatalf("review length %d outside 3000-4500", l)
			}
			break
		}
	}
}

func TestScaleHelpers(t *testing.T) {
	wp := DefaultWikiParams().Scale(10)
	if wp.Requests != 2000 {
		t.Fatalf("wiki scaled requests = %d", wp.Requests)
	}
	if DefaultWikiParams().Scale(1).Requests != 20000 {
		t.Fatal("scale 1 must be identity")
	}
	fp := DefaultForumParams().Scale(10)
	if fp.Requests != 3000 {
		t.Fatalf("forum scaled = %d", fp.Requests)
	}
	hp := DefaultHotCRPParams().Scale(100)
	if hp.Papers < 3 || hp.Reviewers < 3 {
		t.Fatal("hotcrp scaling must respect minimums")
	}
}
