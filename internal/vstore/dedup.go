package vstore

import (
	"strings"

	"orochi/internal/sqlmini"
)

// QueryCache implements read-query deduplication (§4.5): if two SELECT
// queries are lexically identical and the tables they touch were not
// modified between their redo timestamps, the second is answered from
// the first's result. The verifier instantiates one cache per
// control-flow group.
//
// The cache key combines the query text with a "modification epoch"
// fingerprint: for each touched table, the index of the last
// modification at or before the query's timestamp. Equal fingerprints
// imply the two queries see identical data.
type QueryCache struct {
	db *VersionedDB
	m  map[string]*sqlmini.Result

	// Hits counts deduplicated queries, Misses actually-executed ones
	// (the Fig. 9 "DB query" accounting).
	Hits   int64
	Misses int64
}

// NewQueryCache returns a cache over db.
func NewQueryCache(db *VersionedDB) *QueryCache {
	return &QueryCache{db: db, m: make(map[string]*sqlmini.Result)}
}

// Query answers sql (a SELECT) at timestamp ts, deduplicating against
// earlier queries in this cache's lifetime.
func (c *QueryCache) Query(sql string, ts int64) (*sqlmini.Result, error) {
	st, err := sqlmini.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlmini.Select)
	if !ok {
		return nil, errNotSelect
	}
	return c.QueryParsed(sql, sel, ts)
}

// QueryParsed is Query for a statement the caller already parsed (the
// verifier parses each logged statement once and reuses the AST across
// lanes and groups).
func (c *QueryCache) QueryParsed(sql string, sel *sqlmini.Select, ts int64) (*sqlmini.Result, error) {
	key := c.cacheKey(sql, sel, ts)
	if r, ok := c.m[key]; ok {
		c.Hits++
		return r, nil
	}
	c.Misses++
	r, err := c.db.Query(sel, ts)
	if err != nil {
		return nil, err
	}
	c.m[key] = r
	return r, nil
}

func (c *QueryCache) cacheKey(sql string, st sqlmini.Stmt, ts int64) string {
	var b strings.Builder
	b.WriteString(sql)
	for _, tbl := range sqlmini.TablesOf(st) {
		b.WriteByte('\x00')
		b.WriteString(tbl)
		b.WriteByte('=')
		epoch := c.db.ModEpoch(tbl, ts)
		// Write the epoch as a compact decimal.
		writeInt(&b, int64(epoch))
	}
	return b.String()
}

func writeInt(b *strings.Builder, n int64) {
	if n < 0 {
		b.WriteByte('-')
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	b.Write(buf[i:])
}

type notSelectError struct{}

func (notSelectError) Error() string { return "vstore: dedup cache only answers SELECT queries" }

var errNotSelect = notSelectError{}
