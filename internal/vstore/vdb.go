// Package vstore implements OROCHI's audit-time versioned storage (§4.5):
// a versioned database in the style of Warp — every row version carries a
// [start_ts, end_ts) validity interval — plus a versioned key-value
// store, and the read-query deduplication index.
//
// The verifier performs a "versioned redo pass" over the database
// operation log at the beginning of the audit: every logged transaction
// is applied at timestamp ts = seq*MaxQ + q (seq is the transaction's
// global sequence number from the log, q the statement's position within
// the transaction). During re-execution, read queries are answered from
// the versioned store at the timestamp of the corresponding log entry,
// and write queries return the results that the redo pass derived —
// a deterministic function of the (checked) logged writes.
package vstore

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"orochi/internal/sqlmini"
)

// MaxQ is the maximum number of statements in one transaction; it scales
// transaction sequence numbers into per-query timestamps (§A.7; the
// paper's implementation also uses 10000).
const MaxQ = 10000

// TsInf marks a row version that is still live.
const TsInf = int64(math.MaxInt64)

// Ts computes the timestamp of statement q (0-based) in transaction seq.
func Ts(seq int64, q int) int64 {
	return seq*MaxQ + int64(q) + 1
}

// VRow is one version of a row: valid for start <= ts < end.
type VRow struct {
	Vals  []sqlmini.Val
	Start int64
	End   int64
}

// slot is the version chain of one logical row (original insertion
// position). Preserving slot order makes version-visible scans return
// rows in exactly the order the live engine would (updates in the live
// engine mutate rows in place, keeping their scan position).
type slot struct {
	versions []*VRow // increasing Start
}

// vtable is one versioned table.
type vtable struct {
	name     string
	cols     []sqlmini.Column
	schema   *sqlmini.Table // empty table used for schema/cond evaluation
	slots    []*slot
	live     map[int]*VRow // slot index -> live version (nil entries absent)
	nextAuto int64
	autoCol  int
	// modTs is the sorted list of timestamps at which this table was
	// modified; it drives read-query deduplication (§4.5).
	modTs []int64
	// created is the creation timestamp (0 for pre-state tables).
	created int64
}

// VersionedDB is the audit-time versioned database V (with the redo
// buffer M folded in: applying a transaction uses the live map, which
// plays M's role of a fast buffer in front of the version history).
//
// Concurrency contract: the build phase (LoadInitial, ApplyTxn — which
// alone touches the RedoTxns/RedoQueries counters) must run on a single
// goroutine; after it completes, Query/QuerySQL, WriteResult, ModEpoch,
// and the size accessors are pure reads and safe from any number of
// goroutines, which is what the parallel verifier (verifier.Options.
// Workers) relies on during grouped re-execution.
type VersionedDB struct {
	tables map[string]*vtable
	// writeResults[seq][q] holds the redo-derived result of write
	// statement q of transaction seq (nil for reads).
	writeResults map[int64][]*sqlmini.Result
	// stats
	RedoTxns    int64
	RedoQueries int64
}

// NewVersionedDB returns an empty versioned database.
func NewVersionedDB() *VersionedDB {
	return &VersionedDB{
		tables:       make(map[string]*vtable),
		writeResults: make(map[int64][]*sqlmini.Result),
	}
}

// LoadInitial installs the server's pre-audit table state at timestamp 0
// (the verifier keeps a copy of the persistent state between audits,
// §4.1/§5.3).
func (v *VersionedDB) LoadInitial(t *sqlmini.Table) error {
	lname := strings.ToLower(t.Name)
	if _, dup := v.tables[lname]; dup {
		return fmt.Errorf("vstore: table %q loaded twice", t.Name)
	}
	vt, err := newVTable(t.Name, t.Cols, 0)
	if err != nil {
		return err
	}
	vt.nextAuto = t.NextAuto
	for _, row := range t.Rows {
		vals := make([]sqlmini.Val, len(row))
		copy(vals, row)
		vt.appendNewRow(vals, 0)
	}
	v.tables[lname] = vt
	return nil
}

func newVTable(name string, cols []sqlmini.Column, created int64) (*vtable, error) {
	schema, err := sqlmini.NewTempTable(name, append([]sqlmini.Column(nil), cols...), nil)
	if err != nil {
		return nil, err
	}
	vt := &vtable{
		name: name, cols: cols, schema: schema,
		live: make(map[int]*VRow), nextAuto: 1, autoCol: -1, created: created,
	}
	for i, c := range cols {
		if c.AutoInc {
			vt.autoCol = i
		}
	}
	return vt, nil
}

func (t *vtable) appendNewRow(vals []sqlmini.Val, ts int64) {
	r := &VRow{Vals: vals, Start: ts, End: TsInf}
	s := &slot{versions: []*VRow{r}}
	t.slots = append(t.slots, s)
	t.live[len(t.slots)-1] = r
}

func (t *vtable) markModified(ts int64) {
	if n := len(t.modTs); n > 0 && t.modTs[n-1] == ts {
		return
	}
	t.modTs = append(t.modTs, ts)
}

// ApplyTxn redoes one logged transaction (seq = its global sequence
// number in the operation log). Read statements are skipped — they are
// answered at re-execution time via Query. The per-statement results of
// write statements are recorded for SimOp.
func (v *VersionedDB) ApplyTxn(seq int64, stmts []string) error {
	if len(stmts) > MaxQ {
		return fmt.Errorf("vstore: transaction %d has %d statements (max %d)", seq, len(stmts), MaxQ)
	}
	if _, dup := v.writeResults[seq]; dup {
		return fmt.Errorf("vstore: transaction seq %d applied twice", seq)
	}
	v.RedoTxns++
	results := make([]*sqlmini.Result, len(stmts))
	for q, sql := range stmts {
		st, err := sqlmini.Parse(sql)
		if err != nil {
			return fmt.Errorf("vstore: redo seq %d stmt %d: %w", seq, q, err)
		}
		if !sqlmini.IsWrite(st) {
			continue
		}
		v.RedoQueries++
		ts := Ts(seq, q)
		res, err := v.applyWrite(st, ts)
		if err != nil {
			return fmt.Errorf("vstore: redo seq %d stmt %d: %w", seq, q, err)
		}
		results[q] = res
	}
	v.writeResults[seq] = results
	return nil
}

// WriteResult returns the redo-derived result for write statement q of
// transaction seq.
func (v *VersionedDB) WriteResult(seq int64, q int) (*sqlmini.Result, error) {
	rs, ok := v.writeResults[seq]
	if !ok {
		return nil, fmt.Errorf("vstore: no redo record for transaction %d", seq)
	}
	if q < 0 || q >= len(rs) || rs[q] == nil {
		return nil, fmt.Errorf("vstore: transaction %d statement %d is not a redone write", seq, q)
	}
	return rs[q], nil
}

func (v *VersionedDB) applyWrite(st sqlmini.Stmt, ts int64) (*sqlmini.Result, error) {
	switch x := st.(type) {
	case *sqlmini.CreateTable:
		lname := strings.ToLower(x.Table)
		if _, dup := v.tables[lname]; dup {
			return nil, fmt.Errorf("table %q already exists", x.Table)
		}
		vt, err := newVTable(x.Table, x.Cols, ts)
		if err != nil {
			return nil, err
		}
		vt.markModified(ts)
		v.tables[lname] = vt
		return &sqlmini.Result{}, nil
	case *sqlmini.Insert:
		vt, err := v.table(x.Table)
		if err != nil {
			return nil, err
		}
		colIdxs := make([]int, len(x.Cols))
		for i, c := range x.Cols {
			ci := vt.schema.ColIndex(c)
			if ci < 0 {
				return nil, fmt.Errorf("no column %q in %q", c, x.Table)
			}
			colIdxs[i] = ci
		}
		res := &sqlmini.Result{}
		for _, vals := range x.Rows {
			row := make([]sqlmini.Val, len(vt.cols))
			for i, val := range vals {
				cv, err := sqlmini.CoerceCol(vt.cols[colIdxs[i]], val)
				if err != nil {
					return nil, err
				}
				row[colIdxs[i]] = cv
			}
			explicit := false
			for _, ci := range colIdxs {
				if ci == vt.autoCol {
					explicit = true
				}
			}
			if vt.autoCol >= 0 && !explicit {
				row[vt.autoCol] = vt.nextAuto
				res.InsertID = vt.nextAuto
				vt.nextAuto++
			} else if vt.autoCol >= 0 {
				if id, ok := row[vt.autoCol].(int64); ok {
					res.InsertID = id
					if id >= vt.nextAuto {
						vt.nextAuto = id + 1
					}
				}
			}
			vt.appendNewRow(row, ts)
			res.Affected++
		}
		vt.markModified(ts)
		return res, nil
	case *sqlmini.Update:
		vt, err := v.table(x.Table)
		if err != nil {
			return nil, err
		}
		res := &sqlmini.Result{}
		for si := 0; si < len(vt.slots); si++ {
			cur := vt.live[si]
			if cur == nil {
				continue
			}
			match, err := sqlmini.MatchRow(vt.schema, cur.Vals, x.Where)
			if err != nil {
				return nil, err
			}
			if !match {
				continue
			}
			newVals := make([]sqlmini.Val, len(cur.Vals))
			copy(newVals, cur.Vals)
			for _, sc := range x.Sets {
				ci := vt.schema.ColIndex(sc.Col)
				if ci < 0 {
					return nil, fmt.Errorf("no column %q in %q", sc.Col, x.Table)
				}
				if sc.SelfOp == "" {
					cv, err := sqlmini.CoerceCol(vt.cols[ci], sc.Val)
					if err != nil {
						return nil, err
					}
					newVals[ci] = cv
					continue
				}
				bi := vt.schema.ColIndex(sc.SelfBase)
				if bi < 0 {
					return nil, fmt.Errorf("no column %q in SET", sc.SelfBase)
				}
				base := asInt(newVals[bi])
				delta := asInt(sc.Val)
				if sc.SelfOp == "-" {
					delta = -delta
				}
				newVals[ci] = base + delta
			}
			cur.End = ts
			nv := &VRow{Vals: newVals, Start: ts, End: TsInf}
			vt.slots[si].versions = append(vt.slots[si].versions, nv)
			vt.live[si] = nv
			res.Affected++
		}
		if res.Affected > 0 {
			vt.markModified(ts)
		}
		return res, nil
	case *sqlmini.Delete:
		vt, err := v.table(x.Table)
		if err != nil {
			return nil, err
		}
		res := &sqlmini.Result{}
		for si := 0; si < len(vt.slots); si++ {
			cur := vt.live[si]
			if cur == nil {
				continue
			}
			match, err := sqlmini.MatchRow(vt.schema, cur.Vals, x.Where)
			if err != nil {
				return nil, err
			}
			if !match {
				continue
			}
			cur.End = ts
			delete(vt.live, si)
			res.Affected++
		}
		if res.Affected > 0 {
			vt.markModified(ts)
		}
		return res, nil
	default:
		return nil, fmt.Errorf("unsupported write statement %T", st)
	}
}

func asInt(v sqlmini.Val) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case float64:
		return int64(x)
	default:
		return 0
	}
}

func (v *VersionedDB) table(name string) (*vtable, error) {
	t, ok := v.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("vstore: no such table %q", name)
	}
	return t, nil
}

// Query answers a parsed SELECT as of timestamp ts: only row versions
// with Start <= ts < End are visible, in original insertion order.
func (v *VersionedDB) Query(sel *sqlmini.Select, ts int64) (*sqlmini.Result, error) {
	vt, err := v.table(sel.Table)
	if err != nil {
		return nil, err
	}
	rows := vt.visibleRows(ts)
	tmp, err := sqlmini.NewTempTable(vt.name, vt.cols, rows)
	if err != nil {
		return nil, err
	}
	return sqlmini.SelectOver(tmp, sel)
}

// QuerySQL parses and answers a SELECT at ts.
func (v *VersionedDB) QuerySQL(sql string, ts int64) (*sqlmini.Result, error) {
	st, err := sqlmini.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlmini.Select)
	if !ok {
		return nil, fmt.Errorf("vstore: QuerySQL requires a SELECT")
	}
	return v.Query(sel, ts)
}

func (t *vtable) visibleRows(ts int64) [][]sqlmini.Val {
	var out [][]sqlmini.Val
	for _, s := range t.slots {
		// Binary search the version chain: the last version with
		// Start <= ts.
		i := sort.Search(len(s.versions), func(i int) bool { return s.versions[i].Start > ts })
		if i == 0 {
			continue
		}
		ver := s.versions[i-1]
		if ts < ver.End {
			out = append(out, ver.Vals)
		}
	}
	return out
}

// ModEpoch returns, for the named table, the index of the last
// modification at or before ts (-1 if none). Two SELECTs over the same
// tables with equal epochs see identical data — the dedup rule of §4.5.
func (v *VersionedDB) ModEpoch(table string, ts int64) int {
	vt, ok := v.tables[strings.ToLower(table)]
	if !ok {
		return -1
	}
	return sort.Search(len(vt.modTs), func(i int) bool { return vt.modTs[i] > ts }) - 1
}

// MigrateFinal extracts the final ("latest") state of every table as
// plain sqlmini tables — the migration of M's final state that seeds the
// next audit period's database (§4.5: "the verifier dumps each table...
// After the audit, OROCHI needs only the latest state").
func (v *VersionedDB) MigrateFinal() (*sqlmini.DB, error) {
	db := sqlmini.NewDB()
	names := make([]string, 0, len(v.tables))
	for n := range v.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		vt := v.tables[n]
		var defs []string
		for _, c := range vt.cols {
			d := c.Name + " " + c.Type.String()
			if c.AutoInc {
				d += " AUTOINCREMENT"
			}
			defs = append(defs, d)
		}
		if _, err := db.Exec("CREATE TABLE " + vt.name + " (" + strings.Join(defs, ", ") + ")"); err != nil {
			return nil, err
		}
		for si := 0; si < len(vt.slots); si++ {
			row := vt.live[si]
			if row == nil {
				continue
			}
			cols := make([]string, len(vt.cols))
			vals := make([]string, len(vt.cols))
			for i, c := range vt.cols {
				cols[i] = c.Name
				vals[i] = sqlLiteral(row.Vals[i])
			}
			stmt := "INSERT INTO " + vt.name + " (" + strings.Join(cols, ", ") + ") VALUES (" + strings.Join(vals, ", ") + ")"
			if _, err := db.Exec(stmt); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

func sqlLiteral(v sqlmini.Val) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return fmt.Sprintf("%d", x)
	case float64:
		return fmt.Sprintf("%g", x)
	case string:
		return sqlmini.Quote(x)
	default:
		return "NULL"
	}
}

// SizeBytes estimates the full versioned footprint (all versions), the
// numerator of Fig. 8's "temp" DB overhead.
func (v *VersionedDB) SizeBytes() int64 {
	var total int64
	for _, vt := range v.tables {
		for _, s := range vt.slots {
			for _, ver := range s.versions {
				total += rowBytes(ver.Vals) + 16 // two timestamps
			}
		}
	}
	return total
}

// LiveSizeBytes estimates the live-rows-only footprint (the denominator
// of the overhead ratio and the "permanent" state after migration).
func (v *VersionedDB) LiveSizeBytes() int64 {
	var total int64
	for _, vt := range v.tables {
		for _, row := range vt.live {
			total += rowBytes(row.Vals)
		}
	}
	return total
}

func rowBytes(r []sqlmini.Val) int64 {
	var n int64
	for _, v := range r {
		switch x := v.(type) {
		case string:
			n += int64(len(x)) + 8
		default:
			n += 8
		}
	}
	return n
}
