package vstore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"orochi/internal/lang"
	"orochi/internal/sqlmini"
)

func applyTxn(t *testing.T, v *VersionedDB, seq int64, stmts ...string) {
	t.Helper()
	if err := v.ApplyTxn(seq, stmts); err != nil {
		t.Fatalf("ApplyTxn(%d): %v", seq, err)
	}
}

func TestVersionedBasicVisibility(t *testing.T) {
	v := NewVersionedDB()
	applyTxn(t, v, 1, `CREATE TABLE t (id INT AUTOINCREMENT, x TEXT)`)
	applyTxn(t, v, 2, `INSERT INTO t (x) VALUES ('a')`)
	applyTxn(t, v, 3, `UPDATE t SET x = 'b' WHERE id = 1`)
	applyTxn(t, v, 4, `DELETE FROM t WHERE id = 1`)

	// At seq 2's timestamp the insert is visible.
	r, err := v.QuerySQL(`SELECT x FROM t`, Ts(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0] != "a" {
		t.Fatalf("at ts2: %v", r.Rows)
	}
	// Before the insert: empty.
	r, _ = v.QuerySQL(`SELECT x FROM t`, Ts(1, 0))
	if len(r.Rows) != 0 {
		t.Fatalf("at ts1: %v", r.Rows)
	}
	// After the update: 'b'.
	r, _ = v.QuerySQL(`SELECT x FROM t`, Ts(3, 0))
	if len(r.Rows) != 1 || r.Rows[0][0] != "b" {
		t.Fatalf("at ts3: %v", r.Rows)
	}
	// After the delete: empty.
	r, _ = v.QuerySQL(`SELECT x FROM t`, Ts(4, 0))
	if len(r.Rows) != 0 {
		t.Fatalf("at ts4: %v", r.Rows)
	}
}

func TestVersionedWriteResults(t *testing.T) {
	v := NewVersionedDB()
	applyTxn(t, v, 1, `CREATE TABLE t (id INT AUTOINCREMENT, x TEXT)`)
	applyTxn(t, v, 2, `INSERT INTO t (x) VALUES ('a')`)
	applyTxn(t, v, 3, `INSERT INTO t (x) VALUES ('b')`)
	r, err := v.WriteResult(2, 0)
	if err != nil || r.InsertID != 1 {
		t.Fatalf("seq2 insert id = %v, %v", r, err)
	}
	r, _ = v.WriteResult(3, 0)
	if r.InsertID != 2 {
		t.Fatalf("seq3 insert id = %d", r.InsertID)
	}
	if _, err := v.WriteResult(99, 0); err == nil {
		t.Fatal("expected error for unknown seq")
	}
	if _, err := v.WriteResult(2, 5); err == nil {
		t.Fatal("expected error for out-of-range statement")
	}
}

func TestVersionedIntraTxnVisibility(t *testing.T) {
	// A SELECT later in a transaction must see earlier writes of the
	// same transaction (ts = seq*MaxQ + q + 1 is increasing within the
	// transaction).
	v := NewVersionedDB()
	applyTxn(t, v, 1, `CREATE TABLE t (n INT)`)
	applyTxn(t, v, 2,
		`INSERT INTO t (n) VALUES (1)`,
		`SELECT n FROM t`, // read at q=1 — answered at audit time
		`INSERT INTO t (n) VALUES (2)`,
	)
	// Simulated read at the SELECT's own timestamp.
	r, err := v.QuerySQL(`SELECT COUNT(*) FROM t`, Ts(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0] != int64(1) {
		t.Fatalf("intra-txn visibility: %v", r.Rows)
	}
	// After the whole transaction: both rows.
	r, _ = v.QuerySQL(`SELECT COUNT(*) FROM t`, Ts(2, 2))
	if r.Rows[0][0] != int64(2) {
		t.Fatalf("post-txn visibility: %v", r.Rows)
	}
}

func TestVersionedRowOrderMatchesLiveEngine(t *testing.T) {
	// Updated rows must keep their scan position, as they do in the live
	// engine (in-place update).
	v := NewVersionedDB()
	live := sqlmini.NewDB()
	stmts := []string{
		`CREATE TABLE t (id INT, x TEXT)`,
		`INSERT INTO t (id, x) VALUES (1, 'a')`,
		`INSERT INTO t (id, x) VALUES (2, 'b')`,
		`INSERT INTO t (id, x) VALUES (3, 'c')`,
		`UPDATE t SET x = 'B' WHERE id = 2`,
		`DELETE FROM t WHERE id = 1`,
		`INSERT INTO t (id, x) VALUES (4, 'd')`,
	}
	for i, s := range stmts {
		applyTxn(t, v, int64(i+1), s)
		if _, err := live.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := live.Exec(`SELECT x FROM t`)
	got, err := v.QuerySQL(`SELECT x FROM t`, Ts(int64(len(stmts)), 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("row count: versioned %d live %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if got.Rows[i][0] != want.Rows[i][0] {
			t.Fatalf("row %d: versioned %v live %v", i, got.Rows[i], want.Rows[i])
		}
	}
}

func TestLoadInitial(t *testing.T) {
	src := sqlmini.NewDB()
	if _, err := src.Exec(`CREATE TABLE t (id INT AUTOINCREMENT, x TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Exec(`INSERT INTO t (x) VALUES ('pre')`); err != nil {
		t.Fatal(err)
	}
	v := NewVersionedDB()
	if err := v.LoadInitial(src.TableCopy("t")); err != nil {
		t.Fatal(err)
	}
	// Pre-state visible at any ts >= 0.
	r, err := v.QuerySQL(`SELECT x FROM t`, Ts(1, 0))
	if err != nil || len(r.Rows) != 1 || r.Rows[0][0] != "pre" {
		t.Fatalf("pre-state: %v %v", r, err)
	}
	// Auto-increment continues from the pre-state counter.
	applyTxn(t, v, 1, `INSERT INTO t (x) VALUES ('new')`)
	res, _ := v.WriteResult(1, 0)
	if res.InsertID != 2 {
		t.Fatalf("insert id = %d, want 2", res.InsertID)
	}
	if err := v.LoadInitial(src.TableCopy("t")); err == nil {
		t.Fatal("duplicate LoadInitial must fail")
	}
}

func TestMigrateFinal(t *testing.T) {
	v := NewVersionedDB()
	applyTxn(t, v, 1, `CREATE TABLE t (id INT AUTOINCREMENT, x TEXT)`)
	applyTxn(t, v, 2, `INSERT INTO t (x) VALUES ('a')`)
	applyTxn(t, v, 3, `INSERT INTO t (x) VALUES ('b')`)
	applyTxn(t, v, 4, `UPDATE t SET x = 'A' WHERE id = 1`)
	applyTxn(t, v, 5, `DELETE FROM t WHERE id = 2`)
	db, err := v.MigrateFinal()
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.Exec(`SELECT id, x FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0] != int64(1) || r.Rows[0][1] != "A" {
		t.Fatalf("migrated state: %v", r.Rows)
	}
}

func TestApplyTxnErrors(t *testing.T) {
	v := NewVersionedDB()
	applyTxn(t, v, 1, `CREATE TABLE t (n INT)`)
	if err := v.ApplyTxn(1, []string{`INSERT INTO t (n) VALUES (1)`}); err == nil {
		t.Fatal("duplicate seq must fail")
	}
	if err := v.ApplyTxn(2, []string{`INSERT INTO missing (n) VALUES (1)`}); err == nil {
		t.Fatal("bad table must fail")
	}
	if err := v.ApplyTxn(3, []string{`NOT SQL AT ALL`}); err == nil {
		t.Fatal("parse error must fail")
	}
}

// TestVersionedDifferential is the core property test: for random
// statement sequences, a versioned read at the timestamp of position i
// must equal running the statement prefix [0..i] on a live engine and
// querying it.
func TestVersionedDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NewVersionedDB()
		if err := v.ApplyTxn(0, []string{`CREATE TABLE t (id INT, grp INT, val INT)`}); err != nil {
			return false
		}
		var history []string
		history = append(history, `CREATE TABLE t (id INT, grp INT, val INT)`)
		nextID := 1
		nStmts := 5 + rng.Intn(25)
		for i := 1; i <= nStmts; i++ {
			var stmt string
			switch rng.Intn(4) {
			case 0, 1:
				stmt = fmt.Sprintf(`INSERT INTO t (id, grp, val) VALUES (%d, %d, %d)`, nextID, rng.Intn(3), rng.Intn(100))
				nextID++
			case 2:
				stmt = fmt.Sprintf(`UPDATE t SET val = val + %d WHERE grp = %d`, rng.Intn(10), rng.Intn(3))
			case 3:
				if rng.Intn(3) == 0 {
					stmt = fmt.Sprintf(`DELETE FROM t WHERE id = %d`, rng.Intn(nextID)+1)
				} else {
					stmt = fmt.Sprintf(`UPDATE t SET val = %d WHERE id = %d`, rng.Intn(100), rng.Intn(nextID)+1)
				}
			}
			if err := v.ApplyTxn(int64(i), []string{stmt}); err != nil {
				return false
			}
			history = append(history, stmt)
		}
		// Check three random prefixes plus the full history.
		checkpoints := []int{rng.Intn(nStmts + 1), rng.Intn(nStmts + 1), rng.Intn(nStmts + 1), nStmts}
		queries := []string{
			`SELECT id, grp, val FROM t`,
			`SELECT val FROM t WHERE grp = 1 ORDER BY val DESC`,
			`SELECT COUNT(*) FROM t WHERE val > 50`,
			`SELECT id FROM t ORDER BY id LIMIT 3`,
		}
		for _, cp := range checkpoints {
			live := sqlmini.NewDB()
			for i := 0; i <= cp; i++ {
				if _, err := live.Exec(history[i]); err != nil {
					return false
				}
			}
			for _, q := range queries {
				want, err := live.Exec(q)
				if err != nil {
					return false
				}
				got, err := v.QuerySQL(q, Ts(int64(cp), 0))
				if err != nil {
					return false
				}
				if !resultsEqual(want, got) {
					t.Logf("seed %d cp %d query %q: live %v versioned %v", seed, cp, q, want.Rows, got.Rows)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func resultsEqual(a, b *sqlmini.Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return false
			}
		}
	}
	return true
}

func TestVersionedKVBasics(t *testing.T) {
	kv := NewVersionedKV()
	kv.AddSet("k", 5, "v5")
	kv.AddSet("k", 10, "v10")
	kv.AddSet("other", 7, int64(42))
	if got := kv.Get("k", 5); got != nil {
		t.Fatalf("before first set: %v", got)
	}
	if got := kv.Get("k", 6); got != "v5" {
		t.Fatalf("at 6: %v", got)
	}
	if got := kv.Get("k", 10); got != "v5" {
		t.Fatalf("at 10 (strictly before): %v", got)
	}
	if got := kv.Get("k", 11); got != "v10" {
		t.Fatalf("at 11: %v", got)
	}
	if got := kv.Get("missing", 100); got != nil {
		t.Fatalf("missing key: %v", got)
	}
}

func TestVersionedKVInitialAndFinal(t *testing.T) {
	kv := NewVersionedKV()
	kv.LoadInitial("k", "pre")
	kv.AddSet("k", 3, "post")
	if got := kv.Get("k", 1); got != "pre" {
		t.Fatalf("initial: %v", got)
	}
	fin := kv.Final()
	if fin["k"] != "post" {
		t.Fatalf("final: %v", fin)
	}
	if keys := kv.Keys(); len(keys) != 1 || keys[0] != "k" {
		t.Fatalf("keys: %v", keys)
	}
}

func TestVersionedKVClones(t *testing.T) {
	kv := NewVersionedKV()
	arr := lang.NewArray()
	arr.Append("x")
	kv.AddSet("k", 1, arr)
	arr.Append("mutated-after-set")
	got := kv.Get("k", 2).(*lang.Array)
	if got.Len() != 1 {
		t.Fatal("AddSet must clone the value")
	}
}

// TestVersionedKVDifferential: versioned get must equal naive replay of
// the set log prefix.
func TestVersionedKVDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kv := NewVersionedKV()
		naive := []struct {
			seq int64
			key string
			val lang.Value
		}{}
		keys := []string{"a", "b", "c"}
		for seq := int64(1); seq <= 40; seq++ {
			if rng.Intn(2) == 0 {
				k := keys[rng.Intn(len(keys))]
				v := lang.Value(rng.Int63n(100))
				kv.AddSet(k, seq, v)
				naive = append(naive, struct {
					seq int64
					key string
					val lang.Value
				}{seq, k, v})
			}
		}
		for trial := 0; trial < 20; trial++ {
			at := rng.Int63n(45)
			k := keys[rng.Intn(len(keys))]
			var want lang.Value
			for _, e := range naive {
				if e.key == k && e.seq < at {
					want = e.val
				}
			}
			if got := kv.Get(k, at); !lang.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryCacheDedup(t *testing.T) {
	v := NewVersionedDB()
	applyTxn(t, v, 1, `CREATE TABLE t (n INT)`)
	applyTxn(t, v, 2, `INSERT INTO t (n) VALUES (1)`)
	// Reads at different timestamps with no interleaving table mods.
	applyTxn(t, v, 10, `CREATE TABLE other (m INT)`)

	c := NewQueryCache(v)
	r1, err := c.Query(`SELECT n FROM t`, Ts(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Query(`SELECT n FROM t`, Ts(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d (want 1/1)", c.Hits, c.Misses)
	}
	if !resultsEqual(r1, r2) {
		t.Fatal("dedup results differ")
	}
	// Modifying an unrelated table must not break dedup.
	if _, err := c.Query(`SELECT n FROM t`, Ts(11, 0)); err != nil {
		t.Fatal(err)
	}
	if c.Hits != 2 {
		t.Fatalf("unrelated table mod broke dedup: hits=%d", c.Hits)
	}
}

func TestQueryCacheInvalidationOnTableMod(t *testing.T) {
	v := NewVersionedDB()
	applyTxn(t, v, 1, `CREATE TABLE t (n INT)`)
	applyTxn(t, v, 2, `INSERT INTO t (n) VALUES (1)`)
	applyTxn(t, v, 5, `INSERT INTO t (n) VALUES (2)`)
	c := NewQueryCache(v)
	r1, _ := c.Query(`SELECT COUNT(*) FROM t`, Ts(3, 0))
	r2, _ := c.Query(`SELECT COUNT(*) FROM t`, Ts(6, 0))
	if c.Misses != 2 || c.Hits != 0 {
		t.Fatalf("mod between reads must force re-execution: hits=%d misses=%d", c.Hits, c.Misses)
	}
	if r1.Rows[0][0] == r2.Rows[0][0] {
		t.Fatal("results should differ across the modification")
	}
}

func TestQueryCacheDifferentSQLNotDeduped(t *testing.T) {
	v := NewVersionedDB()
	applyTxn(t, v, 1, `CREATE TABLE t (n INT)`)
	applyTxn(t, v, 2, `INSERT INTO t (n) VALUES (7)`)
	c := NewQueryCache(v)
	if _, err := c.Query(`SELECT n FROM t`, Ts(3, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(`SELECT COUNT(*) FROM t`, Ts(3, 0)); err != nil {
		t.Fatal(err)
	}
	if c.Misses != 2 {
		t.Fatalf("lexically different queries must not dedup: misses=%d", c.Misses)
	}
}

func TestQueryCacheRejectsWrites(t *testing.T) {
	v := NewVersionedDB()
	applyTxn(t, v, 1, `CREATE TABLE t (n INT)`)
	c := NewQueryCache(v)
	if _, err := c.Query(`INSERT INTO t (n) VALUES (1)`, Ts(2, 0)); err == nil {
		t.Fatal("cache must reject non-SELECT")
	}
}

func TestSizeAccounting(t *testing.T) {
	v := NewVersionedDB()
	applyTxn(t, v, 1, `CREATE TABLE t (n INT, s TEXT)`)
	applyTxn(t, v, 2, `INSERT INTO t (n, s) VALUES (1, 'hello')`)
	applyTxn(t, v, 3, `UPDATE t SET s = 'world' WHERE n = 1`)
	full := v.SizeBytes()
	live := v.LiveSizeBytes()
	if full <= live {
		t.Fatalf("versioned size (%d) must exceed live size (%d) after updates", full, live)
	}
}

func TestMaxQOverflow(t *testing.T) {
	v := NewVersionedDB()
	stmts := make([]string, MaxQ+1)
	for i := range stmts {
		stmts[i] = `SELECT n FROM t`
	}
	if err := v.ApplyTxn(1, stmts); err == nil {
		t.Fatal("transaction exceeding MaxQ must fail")
	}
}
