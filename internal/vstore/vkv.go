package vstore

import (
	"sort"

	"orochi/internal/lang"
)

// VersionedKV is the audit-time versioned key-value store (§4.5, §4.7):
// a map from key to (seq, value) pairs. kv.Get(key, seq) returns, of all
// entries in the store's operation log, the KvSet to key with the
// highest sequence number strictly less than seq — which is exactly what
// replaying the log prefix OL[1..seq-1] against an abstract key-value
// store and then issuing get(key) would return (§A.7).
//
// Concurrency contract: the build phase (LoadInitial, AddSet) must run
// on a single goroutine; after it completes, Get/Final/Keys are pure
// reads and safe from any number of goroutines — the parallel verifier
// consults the store from every re-execution worker.
type VersionedKV struct {
	m map[string][]kvVersion
}

type kvVersion struct {
	seq int64
	val lang.Value
}

// NewVersionedKV returns an empty versioned KV store.
func NewVersionedKV() *VersionedKV {
	return &VersionedKV{m: make(map[string][]kvVersion)}
}

// LoadInitial installs a pre-audit key value at sequence 0.
func (kv *VersionedKV) LoadInitial(key string, val lang.Value) {
	kv.m[key] = append(kv.m[key], kvVersion{seq: 0, val: lang.CloneValue(val)})
}

// AddSet records the KvSet at sequence seq during the build pass. Calls
// must be made in increasing seq order per key (the log is scanned in
// order, so this holds).
func (kv *VersionedKV) AddSet(key string, seq int64, val lang.Value) {
	kv.m[key] = append(kv.m[key], kvVersion{seq: seq, val: lang.CloneValue(val)})
}

// Get returns the value of key as of (strictly before) sequence seq, or
// nil if the key was never set before seq.
func (kv *VersionedKV) Get(key string, seq int64) lang.Value {
	vers := kv.m[key]
	// Find the last version with version.seq < seq.
	i := sort.Search(len(vers), func(i int) bool { return vers[i].seq >= seq })
	if i == 0 {
		return nil
	}
	return vers[i-1].val
}

// Final returns the latest value per key (the permanent state carried to
// the next audit period) together with the key list, sorted.
func (kv *VersionedKV) Final() map[string]lang.Value {
	out := make(map[string]lang.Value, len(kv.m))
	for k, vers := range kv.m {
		if len(vers) > 0 {
			out[k] = vers[len(vers)-1].val
		}
	}
	return out
}

// Keys returns all keys, sorted (for deterministic iteration).
func (kv *VersionedKV) Keys() []string {
	keys := make([]string, 0, len(kv.m))
	for k := range kv.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
