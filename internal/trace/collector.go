package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Tap observes the live event stream and controls audit-period
// boundaries. Both methods are invoked while the collector's lock is
// held, so implementations see events in exact trace order and must not
// call back into the collector (or into anything that does).
//
// Event is invoked after every appended event; open is the number of
// requests whose response has not yet been recorded, and total is the
// number of events buffered in the current period (including ev). A
// true return asks the collector to end the period; the collector
// honours the request only at a balanced point (open == 0), because a
// period split mid-request would be unbalanced and unauditable (§4.7:
// "the server must be drained prior to an audit").
//
// Cut receives ownership of the finished period's events. After Cut
// returns, the collector's buffer is empty and its clock restarts at
// zero, while requestIDs remain globally unique across periods.
type Tap interface {
	Event(ev Event, open, total int) (cut bool)
	Cut(events []Event)
}

// Collector plays the role of the trusted middlebox at the network edge
// (§1, §4.1). It assigns logical timestamps and requestIDs and records an
// accurate, time-ordered trace of the requests entering and the responses
// leaving the executor. Collectors are safe for concurrent use; requests
// from many client goroutines interleave exactly as they would at a
// network tap.
type Collector struct {
	// nextID is atomic so rid allocation (and the fmt work to render it)
	// happens outside the collector's critical section; rids are unique
	// tokens, not trace-order evidence — ordering lives in the events.
	nextID atomic.Int64

	mu     sync.Mutex
	clock  int64
	open   int // requests awaiting their response
	events []Event
	// sizeHint is the previous period's event count; fresh period
	// buffers are preallocated to it so steady-state serving does not
	// repeatedly regrow the slice from zero.
	sizeHint int
	tap      Tap
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{}
}

// SetTap installs (or, with nil, removes) the stream tap. The epoch
// pipeline uses it to tee events into a durable log and to cut epoch
// boundaries at balanced points.
func (c *Collector) SetTap(t Tap) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tap = t
}

// append records ev and runs the tap, cutting the period if the tap
// requests it at a balanced point. The caller holds c.mu.
func (c *Collector) append(ev Event) {
	if c.events == nil && c.sizeHint > 0 {
		c.events = make([]Event, 0, c.sizeHint)
	}
	c.events = append(c.events, ev)
	if c.tap == nil {
		return
	}
	if c.tap.Event(ev, c.open, len(c.events)) && c.open == 0 {
		evs := c.events
		// Ownership of the buffer passes to the tap; start the next
		// period with a buffer sized like the one that just ended.
		c.sizeHint = len(evs)
		c.events = nil
		c.clock = 0
		c.tap.Cut(evs)
	}
}

// BeginRequest records the arrival of a request and returns the assigned
// requestID. The caller must later call EndRequest with the same rid.
// The input clone and the rid rendering run before the critical section,
// keeping per-event lock hold time minimal under high concurrency.
func (c *Collector) BeginRequest(in Input) string {
	cloned := in.Clone()
	rid := fmt.Sprintf("r%06d", c.nextID.Add(1))
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	c.open++
	c.append(Event{Kind: Request, RID: rid, Time: c.clock, In: cloned})
	return rid
}

// BeginRequestWithID records the arrival of a request under a
// caller-chosen requestID. It is used by tests and by traces replayed
// from disk, where rids must be stable.
func (c *Collector) BeginRequestWithID(rid string, in Input) {
	cloned := in.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	c.open++
	c.append(Event{Kind: Request, RID: rid, Time: c.clock, In: cloned})
}

// EndRequest records the departure of the response for rid.
func (c *Collector) EndRequest(rid string, body string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	if c.open > 0 {
		c.open--
	}
	c.append(Event{Kind: Response, RID: rid, Time: c.clock, Body: body})
}

// Trace returns a snapshot of the collected trace. The snapshot is
// independent of later collection.
func (c *Collector) Trace() *Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	evs := make([]Event, len(c.events))
	copy(evs, c.events)
	return &Trace{Events: evs}
}

// Reset discards all collected events and restarts the logical clock,
// starting a fresh audit period whose timestamps begin at 1 again.
// requestIDs stay monotonic across periods so rids remain globally
// unique over the lifetime of the collector.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The buffer was never handed out (Trace copies, Cut nils it), so
	// its capacity can be reused for the next period.
	c.events = c.events[:0]
	c.clock = 0
	c.open = 0
}
