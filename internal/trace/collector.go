package trace

import (
	"fmt"
	"sync"
)

// Collector plays the role of the trusted middlebox at the network edge
// (§1, §4.1). It assigns logical timestamps and requestIDs and records an
// accurate, time-ordered trace of the requests entering and the responses
// leaving the executor. Collectors are safe for concurrent use; requests
// from many client goroutines interleave exactly as they would at a
// network tap.
type Collector struct {
	mu     sync.Mutex
	clock  int64
	nextID int64
	events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{}
}

// BeginRequest records the arrival of a request and returns the assigned
// requestID. The caller must later call EndRequest with the same rid.
func (c *Collector) BeginRequest(in Input) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	c.clock++
	rid := fmt.Sprintf("r%06d", c.nextID)
	c.events = append(c.events, Event{Kind: Request, RID: rid, Time: c.clock, In: in.Clone()})
	return rid
}

// BeginRequestWithID records the arrival of a request under a
// caller-chosen requestID. It is used by tests and by traces replayed
// from disk, where rids must be stable.
func (c *Collector) BeginRequestWithID(rid string, in Input) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	c.events = append(c.events, Event{Kind: Request, RID: rid, Time: c.clock, In: in.Clone()})
}

// EndRequest records the departure of the response for rid.
func (c *Collector) EndRequest(rid string, body string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	c.events = append(c.events, Event{Kind: Response, RID: rid, Time: c.clock, Body: body})
}

// Trace returns a snapshot of the collected trace. The snapshot is
// independent of later collection.
func (c *Collector) Trace() *Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	evs := make([]Event, len(c.events))
	copy(evs, c.events)
	return &Trace{Events: evs}
}

// Reset discards all collected events, starting a fresh audit period.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = nil
}
