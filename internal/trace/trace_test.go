package trace

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func req(rid string, t int64) Event {
	return Event{Kind: Request, RID: rid, Time: t, In: Input{Script: "s"}}
}
func resp(rid string, t int64) Event {
	return Event{Kind: Response, RID: rid, Time: t, Body: "b"}
}

func TestBalancedOK(t *testing.T) {
	tr := &Trace{Events: []Event{
		req("r1", 1), req("r2", 2), resp("r1", 3), resp("r2", 4),
	}}
	if err := tr.Balanced(); err != nil {
		t.Fatalf("expected balanced, got %v", err)
	}
}

func TestBalancedEmpty(t *testing.T) {
	tr := &Trace{}
	if err := tr.Balanced(); err != nil {
		t.Fatalf("empty trace should be balanced: %v", err)
	}
}

func TestBalancedMissingResponse(t *testing.T) {
	tr := &Trace{Events: []Event{req("r1", 1)}}
	if err := tr.Balanced(); err == nil {
		t.Fatal("expected error for request without response")
	}
}

func TestBalancedResponseBeforeRequest(t *testing.T) {
	tr := &Trace{Events: []Event{resp("r1", 1), req("r1", 2)}}
	if err := tr.Balanced(); err == nil {
		t.Fatal("expected error for response preceding request")
	}
}

func TestBalancedOrphanResponse(t *testing.T) {
	tr := &Trace{Events: []Event{req("r1", 1), resp("r1", 2), resp("r2", 3)}}
	if err := tr.Balanced(); err == nil {
		t.Fatal("expected error for response without request")
	}
}

func TestBalancedDuplicateRequest(t *testing.T) {
	tr := &Trace{Events: []Event{req("r1", 1), req("r1", 2), resp("r1", 3)}}
	if err := tr.Balanced(); err == nil {
		t.Fatal("expected error for duplicate requestID")
	}
}

func TestBalancedDuplicateResponse(t *testing.T) {
	tr := &Trace{Events: []Event{req("r1", 1), resp("r1", 2), resp("r1", 3)}}
	if err := tr.Balanced(); err == nil {
		t.Fatal("expected error for duplicate response")
	}
}

func TestBalancedOutOfOrderTime(t *testing.T) {
	tr := &Trace{Events: []Event{req("r1", 5), resp("r1", 3)}}
	if err := tr.Balanced(); err == nil {
		t.Fatal("expected error for decreasing timestamps")
	}
}

func TestBalancedEmptyRID(t *testing.T) {
	tr := &Trace{Events: []Event{req("", 1)}}
	if err := tr.Balanced(); err == nil {
		t.Fatal("expected error for empty requestID")
	}
}

func TestSortStable(t *testing.T) {
	tr := &Trace{Events: []Event{resp("r2", 4), req("r1", 1), resp("r1", 3), req("r2", 2)}}
	tr.Sort()
	if err := tr.Balanced(); err != nil {
		t.Fatalf("sorted trace should be balanced: %v", err)
	}
	want := []string{"r1", "r2", "r1", "r2"}
	for i, ev := range tr.Events {
		if ev.RID != want[i] {
			t.Fatalf("event %d: got rid %s want %s", i, ev.RID, want[i])
		}
	}
}

func TestSortTieBreak(t *testing.T) {
	// Same timestamp: request must sort before response.
	tr := &Trace{Events: []Event{resp("r1", 1), req("r1", 1)}}
	tr.Sort()
	if tr.Events[0].Kind != Request {
		t.Fatal("request should precede response at equal time")
	}
}

func TestPrecedesTr(t *testing.T) {
	// r1 fully precedes r2; r3 overlaps both.
	tr := &Trace{Events: []Event{
		req("r3", 1), req("r1", 2), resp("r1", 3), req("r2", 4), resp("r2", 5), resp("r3", 6),
	}}
	cases := []struct {
		a, b string
		want bool
	}{
		{"r1", "r2", true},
		{"r2", "r1", false},
		{"r1", "r3", false},
		{"r3", "r1", false},
		{"r3", "r2", false},
		{"r2", "r3", false},
		{"r1", "r1", false},
	}
	for _, c := range cases {
		if got := tr.PrecedesTr(c.a, c.b); got != c.want {
			t.Errorf("PrecedesTr(%s,%s)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAccessors(t *testing.T) {
	in := Input{Script: "view", Get: map[string]string{"p": "1"}}
	tr := &Trace{Events: []Event{
		{Kind: Request, RID: "r1", Time: 1, In: in},
		{Kind: Response, RID: "r1", Time: 2, Body: "hello"},
	}}
	if got, ok := tr.ResponseOf("r1"); !ok || got != "hello" {
		t.Fatalf("ResponseOf = %q,%v", got, ok)
	}
	if _, ok := tr.ResponseOf("rX"); ok {
		t.Fatal("ResponseOf should miss unknown rid")
	}
	if got, ok := tr.InputOf("r1"); !ok || got.Script != "view" || got.Get["p"] != "1" {
		t.Fatalf("InputOf = %+v,%v", got, ok)
	}
	if _, ok := tr.InputOf("rX"); ok {
		t.Fatal("InputOf should miss unknown rid")
	}
	if n := tr.RequestCount(); n != 1 {
		t.Fatalf("RequestCount = %d", n)
	}
	if rs := tr.Requests(); len(rs) != 1 || rs[0].RID != "r1" {
		t.Fatalf("Requests = %+v", rs)
	}
	if m := tr.Responses(); m["r1"] != "hello" {
		t.Fatalf("Responses = %v", m)
	}
	if m := tr.Inputs(); m["r1"].Script != "view" {
		t.Fatalf("Inputs = %v", m)
	}
}

func TestInputClone(t *testing.T) {
	in := Input{Script: "s", Get: map[string]string{"a": "1"}, Post: map[string]string{"b": "2"}, Cookie: map[string]string{"c": "3"}}
	cl := in.Clone()
	cl.Get["a"] = "mutated"
	cl.Post["b"] = "mutated"
	cl.Cookie["c"] = "mutated"
	if in.Get["a"] != "1" || in.Post["b"] != "2" || in.Cookie["c"] != "3" {
		t.Fatal("Clone must deep-copy maps")
	}
	var empty Input
	cl2 := empty.Clone()
	if cl2.Get != nil || cl2.Post != nil || cl2.Cookie != nil {
		t.Fatal("Clone of empty input should keep nil maps")
	}
}

func TestCollectorSequential(t *testing.T) {
	c := NewCollector()
	rid1 := c.BeginRequest(Input{Script: "a"})
	c.EndRequest(rid1, "out1")
	rid2 := c.BeginRequest(Input{Script: "b"})
	c.EndRequest(rid2, "out2")
	tr := c.Trace()
	if err := tr.Balanced(); err != nil {
		t.Fatalf("collector trace not balanced: %v", err)
	}
	if !tr.PrecedesTr(rid1, rid2) {
		t.Fatal("sequential requests should be ordered by <Tr")
	}
	if b, _ := tr.ResponseOf(rid2); b != "out2" {
		t.Fatalf("lost response body: %q", b)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rid := c.BeginRequest(Input{Script: "s", Get: map[string]string{"i": fmt.Sprint(i)}})
			c.EndRequest(rid, fmt.Sprintf("out%d", i))
		}(i)
	}
	wg.Wait()
	tr := c.Trace()
	if err := tr.Balanced(); err != nil {
		t.Fatalf("concurrent trace not balanced: %v", err)
	}
	if tr.RequestCount() != n {
		t.Fatalf("RequestCount = %d want %d", tr.RequestCount(), n)
	}
	// RIDs must be unique (Balanced checks this too, but be explicit).
	seen := map[string]bool{}
	for _, ev := range tr.Requests() {
		if seen[ev.RID] {
			t.Fatalf("duplicate rid %s", ev.RID)
		}
		seen[ev.RID] = true
	}
}

func TestCollectorSnapshotIsolation(t *testing.T) {
	c := NewCollector()
	rid := c.BeginRequest(Input{Script: "s"})
	c.EndRequest(rid, "x")
	tr := c.Trace()
	got := len(tr.Events)
	rid2 := c.BeginRequest(Input{Script: "s"})
	c.EndRequest(rid2, "y")
	if len(tr.Events) != got {
		t.Fatal("snapshot must not observe later events")
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	rid := c.BeginRequest(Input{Script: "s"})
	c.EndRequest(rid, "x")
	c.Reset()
	if c.Trace().Len() != 0 {
		t.Fatal("Reset should clear events")
	}
}

func TestCollectorWithID(t *testing.T) {
	c := NewCollector()
	c.BeginRequestWithID("custom-1", Input{Script: "s"})
	c.EndRequest("custom-1", "x")
	tr := c.Trace()
	if err := tr.Balanced(); err != nil {
		t.Fatal(err)
	}
	if tr.Events[0].RID != "custom-1" {
		t.Fatalf("rid = %s", tr.Events[0].RID)
	}
}

// TestPrecedesRandom cross-checks PrecedesTr's scan against timestamps on
// randomly generated balanced traces.
func TestPrecedesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		tr := randomBalancedTrace(rng, 12)
		reqT := map[string]int64{}
		respT := map[string]int64{}
		var rids []string
		for _, ev := range tr.Events {
			if ev.Kind == Request {
				reqT[ev.RID] = ev.Time
				rids = append(rids, ev.RID)
			} else {
				respT[ev.RID] = ev.Time
			}
		}
		for _, a := range rids {
			for _, b := range rids {
				if a == b {
					continue
				}
				want := respT[a] < reqT[b]
				if got := tr.PrecedesTr(a, b); got != want {
					t.Fatalf("iter %d: PrecedesTr(%s,%s)=%v want %v", iter, a, b, got, want)
				}
			}
		}
	}
}

// randomBalancedTrace builds a balanced trace of n requests with random
// overlap structure and strictly increasing timestamps.
func randomBalancedTrace(rng *rand.Rand, n int) *Trace {
	type pending struct{ rid string }
	var evs []Event
	var open []pending
	var clock int64
	issued := 0
	for issued < n || len(open) > 0 {
		clock++
		canOpen := issued < n
		canClose := len(open) > 0
		if canOpen && (!canClose || rng.Intn(2) == 0) {
			rid := fmt.Sprintf("r%03d", issued)
			issued++
			evs = append(evs, Event{Kind: Request, RID: rid, Time: clock, In: Input{Script: "s"}})
			open = append(open, pending{rid})
		} else {
			i := rng.Intn(len(open))
			evs = append(evs, Event{Kind: Response, RID: open[i].rid, Time: clock, Body: "b"})
			open = append(open[:i], open[i+1:]...)
		}
	}
	return &Trace{Events: evs}
}

func TestCollectorResetRestartsClockKeepsRIDs(t *testing.T) {
	c := NewCollector()
	rid1 := c.BeginRequest(Input{Script: "s"})
	c.EndRequest(rid1, "x")
	c.Reset()
	rid2 := c.BeginRequest(Input{Script: "s"})
	c.EndRequest(rid2, "y")
	tr := c.Trace()
	if tr.Events[0].Time != 1 || tr.Events[1].Time != 2 {
		t.Fatalf("timestamps after Reset must restart at 1: got %d, %d",
			tr.Events[0].Time, tr.Events[1].Time)
	}
	if rid1 == rid2 {
		t.Fatalf("rids must stay unique across periods, got %s twice", rid1)
	}
}

// tapRecorder cuts whenever the event count reaches limit at a balanced
// point, collecting each finished period.
type tapRecorder struct {
	limit   int
	periods [][]Event
	seen    int
}

func (tp *tapRecorder) Event(ev Event, open, total int) bool {
	tp.seen++
	return total >= tp.limit
}

func (tp *tapRecorder) Cut(events []Event) { tp.periods = append(tp.periods, events) }

func TestCollectorTapCutsAtBalancedPoints(t *testing.T) {
	c := NewCollector()
	tp := &tapRecorder{limit: 4}
	c.SetTap(tp)
	// Two overlapping requests: the threshold (4 events) is reached at
	// r1's response while r2 is still open, so the cut must wait for
	// the balanced point at r2's response.
	r1 := c.BeginRequest(Input{Script: "a"})
	r2 := c.BeginRequest(Input{Script: "b"})
	c.EndRequest(r1, "x") // 3 events, open=1: no cut
	c.EndRequest(r2, "y") // 4 events, open=0: cut here
	r3 := c.BeginRequest(Input{Script: "c"})
	c.EndRequest(r3, "z")
	if len(tp.periods) != 1 {
		t.Fatalf("got %d cuts, want 1", len(tp.periods))
	}
	if n := len(tp.periods[0]); n != 4 {
		t.Fatalf("cut period holds %d events, want 4", n)
	}
	if err := (&Trace{Events: tp.periods[0]}).Balanced(); err != nil {
		t.Fatalf("cut period unbalanced: %v", err)
	}
	tr := c.Trace()
	if tr.Len() != 2 {
		t.Fatalf("collector holds %d events after cut, want 2", tr.Len())
	}
	if tr.Events[0].Time != 1 {
		t.Fatalf("post-cut timestamps must restart at 1, got %d", tr.Events[0].Time)
	}
	if tp.seen != 6 {
		t.Fatalf("tap observed %d events, want 6", tp.seen)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Kind: Request, RID: "r1", Time: 1, In: Input{Script: "s"}},
		{Kind: Response, RID: "r1", Time: 2, Body: "x"},
	}}
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data[:len(data)-4]); err == nil {
		t.Fatal("Decode accepted truncated input")
	}
	if _, err := Decode(data[:len(data)/2]); err == nil {
		t.Fatal("Decode accepted half the stream")
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Kind: Request, RID: "r1", Time: 1, In: Input{Script: "s"}},
		{Kind: Response, RID: "r1", Time: 2, Body: "x"},
	}}
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(data, 0xDE, 0xAD)); err == nil {
		t.Fatal("Decode accepted trailing garbage")
	}
	// The clean stream still round-trips.
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip lost events: %d", got.Len())
	}
}
