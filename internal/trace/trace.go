// Package trace models the ordered list of requests and responses that the
// trusted collector captures at the boundary of the untrusted executor
// (§2 of the paper). A Trace is the ground truth the verifier audits
// against: it records exactly the requests that flowed into the executor
// and the (possibly wrong) responses that flowed out, in time order.
package trace

import (
	"fmt"
	"sort"
)

// EventKind distinguishes the two kinds of externally observable events.
type EventKind uint8

const (
	// Request marks the arrival of a client request at the executor.
	Request EventKind = iota
	// Response marks the departure of the executor's response.
	Response
)

func (k EventKind) String() string {
	switch k {
	case Request:
		return "REQUEST"
	case Response:
		return "RESPONSE"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Input is the content of one request: which script to run and the
// materialized superglobals. It plays the role of an HTTP request in
// OROCHI's setting (§4.2).
type Input struct {
	// Script names the application subroutine (a "PHP script") to invoke,
	// e.g. "view" or "edit".
	Script string
	// Get, Post and Cookie become $_GET, $_POST and $_COOKIE inside the
	// application program.
	Get    map[string]string
	Post   map[string]string
	Cookie map[string]string
}

// Clone returns a deep copy of the input.
func (in Input) Clone() Input {
	return Input{
		Script: in.Script,
		Get:    cloneMap(in.Get),
		Post:   cloneMap(in.Post),
		Cookie: cloneMap(in.Cookie),
	}
}

func cloneMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Event is one entry in the trace. Time is a logical timestamp assigned
// by the collector; only the relative order matters (§A.1).
type Event struct {
	Kind EventKind
	RID  string
	Time int64
	// In holds the request contents (Kind == Request only).
	In Input
	// Body holds the response contents (Kind == Response only).
	Body string
}

// Trace is a time-ordered, timestamped list of events.
type Trace struct {
	Events []Event
}

// Len reports the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// RequestCount reports the number of REQUEST events.
func (t *Trace) RequestCount() int {
	n := 0
	for i := range t.Events {
		if t.Events[i].Kind == Request {
			n++
		}
	}
	return n
}

// Sort orders events by logical time, breaking ties by placing responses
// after requests and otherwise by RID for determinism. Collectors emit
// events already ordered; Sort exists for traces assembled by hand or
// loaded from disk.
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		a, b := &t.Events[i], &t.Events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Kind != b.Kind {
			return a.Kind == Request
		}
		return a.RID < b.RID
	})
}

// Balanced verifies the properties the verifier requires before invoking
// the audit (§3): every response is associated with an earlier request,
// every request has exactly one response, and requestIDs are unique. It
// returns a descriptive error for the first violation found.
func (t *Trace) Balanced() error {
	type state struct {
		requested bool
		responded bool
	}
	seen := make(map[string]*state, len(t.Events)/2)
	var lastTime int64
	first := true
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.RID == "" {
			return fmt.Errorf("trace: event %d has empty requestID", i)
		}
		if !first && ev.Time < lastTime {
			return fmt.Errorf("trace: event %d (rid %s) out of time order", i, ev.RID)
		}
		first = false
		lastTime = ev.Time
		st := seen[ev.RID]
		switch ev.Kind {
		case Request:
			if st != nil {
				return fmt.Errorf("trace: duplicate request for rid %s", ev.RID)
			}
			seen[ev.RID] = &state{requested: true}
		case Response:
			if st == nil || !st.requested {
				return fmt.Errorf("trace: response for rid %s precedes its request", ev.RID)
			}
			if st.responded {
				return fmt.Errorf("trace: duplicate response for rid %s", ev.RID)
			}
			st.responded = true
		default:
			return fmt.Errorf("trace: event %d has unknown kind %d", i, ev.Kind)
		}
	}
	for rid, st := range seen {
		if !st.responded {
			return fmt.Errorf("trace: request %s has no response", rid)
		}
	}
	return nil
}

// Requests returns the request events, in trace order.
func (t *Trace) Requests() []Event {
	var out []Event
	for i := range t.Events {
		if t.Events[i].Kind == Request {
			out = append(out, t.Events[i])
		}
	}
	return out
}

// ResponseOf returns the response body for rid and whether one exists.
func (t *Trace) ResponseOf(rid string) (string, bool) {
	for i := range t.Events {
		if t.Events[i].Kind == Response && t.Events[i].RID == rid {
			return t.Events[i].Body, true
		}
	}
	return "", false
}

// InputOf returns the request input for rid and whether one exists.
func (t *Trace) InputOf(rid string) (Input, bool) {
	for i := range t.Events {
		if t.Events[i].Kind == Request && t.Events[i].RID == rid {
			return t.Events[i].In, true
		}
	}
	return Input{}, false
}

// Responses returns a map from requestID to response body.
func (t *Trace) Responses() map[string]string {
	out := make(map[string]string)
	for i := range t.Events {
		if t.Events[i].Kind == Response {
			out[t.Events[i].RID] = t.Events[i].Body
		}
	}
	return out
}

// Inputs returns a map from requestID to request input.
func (t *Trace) Inputs() map[string]Input {
	out := make(map[string]Input)
	for i := range t.Events {
		if t.Events[i].Kind == Request {
			out[t.Events[i].RID] = t.Events[i].In
		}
	}
	return out
}

// PrecedesTr reports whether r1 <Tr r2: the trace shows r1's response
// departed before r2's request arrived (§3.5). It is the reference
// (quadratic-time) definition used by tests; the verifier uses the
// frontier algorithm in internal/core.
func (t *Trace) PrecedesTr(r1, r2 string) bool {
	respTime := int64(-1)
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Kind == Response && ev.RID == r1 {
			respTime = ev.Time
			// A response strictly precedes a request only if the request
			// event appears later in the trace; scan for r2's request.
			for j := i + 1; j < len(t.Events); j++ {
				e2 := &t.Events[j]
				if e2.Kind == Request && e2.RID == r2 {
					return true
				}
			}
			return false
		}
	}
	_ = respTime
	return false
}
