package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"

	"orochi/internal/encio"
)

// Encode serializes the trace with gob+gzip — the format the collector
// ships to the verifier and cmd/orochi-audit reads from disk.
func (t *Trace) Encode() ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := gob.NewEncoder(zw).Encode(t); err != nil {
		return nil, fmt.Errorf("trace: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("trace: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a trace produced by Encode. Truncated input and
// trailing garbage are errors: on-disk segments must decode exactly or
// not at all, so corruption can never pass silently as an empty or
// shortened trace.
func Decode(data []byte) (*Trace, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	defer zr.Close()
	var t Trace
	if err := gob.NewDecoder(zr).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := encio.ExpectEOF(zr); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return &t, nil
}

// WriteFile stores the encoded trace at path.
func (t *Trace) WriteFile(path string) error {
	data, err := t.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads a trace stored by WriteFile.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
