package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"

	"orochi/internal/encio"
)

// EncodeRaw serializes the trace with gob, uncompressed. This is the
// logical form the content-addressed store chunks: gzip output has no
// cross-epoch redundancy, so dedup must operate on raw bytes, with
// compression pushed down to the chunk layer.
func (t *Trace) EncodeRaw() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(t); err != nil {
		return nil, fmt.Errorf("trace: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRaw deserializes a trace produced by EncodeRaw. Trailing
// garbage is an error, matching Decode's strictness.
func DecodeRaw(data []byte) (*Trace, error) {
	r := bytes.NewReader(data)
	var t Trace
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := encio.ExpectEOF(r); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return &t, nil
}

// Encode serializes the trace with gob+gzip — the format the collector
// ships to the verifier and cmd/orochi-audit reads from disk.
func (t *Trace) Encode() ([]byte, error) {
	raw, err := t.EncodeRaw()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		return nil, fmt.Errorf("trace: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("trace: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a trace produced by Encode. Truncated input and
// trailing garbage are errors: on-disk segments must decode exactly or
// not at all, so corruption can never pass silently as an empty or
// shortened trace.
func Decode(data []byte) (*Trace, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	defer zr.Close()
	var t Trace
	if err := gob.NewDecoder(zr).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := encio.ExpectEOF(zr); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return &t, nil
}

// WriteFile stores the encoded trace at path.
func (t *Trace) WriteFile(path string) error {
	data, err := t.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads a trace stored by WriteFile.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
