// Package encio holds small helpers shared by the gob+gzip codecs in
// trace, reports, and object.
package encio

import (
	"fmt"
	"io"
)

// ExpectEOF verifies that r has been fully consumed. Reading the one
// extra byte also forces a gzip reader to validate its trailer
// checksum, so truncated-then-repadded streams cannot slip through.
func ExpectEOF(r io.Reader) error {
	switch n, err := io.CopyN(io.Discard, r, 1); {
	case err == io.EOF && n == 0:
		return nil
	case err != nil && err != io.EOF:
		return err
	default:
		return fmt.Errorf("trailing data after encoded stream")
	}
}
