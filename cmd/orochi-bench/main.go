// Command orochi-bench regenerates the tables and figures of the paper's
// evaluation (§5) and prints them as text. Each -fig target corresponds
// to one table/figure; -scale divides the paper-sized workloads for
// quicker runs (scale 1 = the paper's request counts).
//
//	orochi-bench -fig 8            Fig. 8 left table (speedup, overheads, sizes)
//	orochi-bench -fig 8lat         Fig. 8 right graph (latency vs throughput)
//	orochi-bench -fig 9            Fig. 9 audit-cost decomposition
//	orochi-bench -fig 10           Fig. 10 per-instruction costs
//	orochi-bench -fig 11           Fig. 11 group characteristics
//	orochi-bench -fig frontier     §3.5/§A.8 time-precedence algorithm
//	orochi-bench -fig workers      parallel audit: speedup vs sequential per worker count
//	orochi-bench -fig serve        serving throughput vs concurrency, global-ish lock vs sharded
//	orochi-bench -fig fleet        distributed audit: 1 vs N fleet workers, cold vs warm fetch
//	orochi-bench -fig all          everything
//
// -audit-workers sets the verifier's worker pool for the audit-running
// figures (0 = all CPUs); -fig workers sweeps worker counts in the
// style of `go test -cpu` and reports the speedup over one worker.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"syscall"
	"text/tabwriter"
	"time"

	"orochi/internal/cas"
	"orochi/internal/core"
	"orochi/internal/epoch"
	"orochi/internal/fleet"
	"orochi/internal/harness"
	"orochi/internal/lang"
	"orochi/internal/server"
	"orochi/internal/trace"
	"orochi/internal/verifier"
	"orochi/internal/workload"
)

// benchCtx is cancelled by SIGINT/SIGTERM: the audits behind the
// figures abandon their worker pools cleanly instead of leaving a
// half-printed table behind a hung Ctrl-C.
var benchCtx = context.Background()

// benchMaxGroup routes the -max-group flag into every audit a figure
// runs (0 = the verifier's default SIMD batch cap).
var benchMaxGroup int

func main() {
	var stop context.CancelFunc
	benchCtx, stop = signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fig := flag.String("fig", "all", "which figure/table to regenerate (8, 8lat, 9, 10, 11, frontier, workers, serve, fleet, all)")
	scale := flag.Int("scale", 10, "divide paper-sized workloads by this factor (1 = full size)")
	conc := flag.Int("concurrency", 8, "in-flight requests while serving")
	// The paper-shape figures default to the sequential audit so the
	// printed columns stay comparable to the paper's single-core
	// reference numbers (and Fig. 9's CPU decomposition adds up);
	// parallelism is measured by the dedicated -fig workers sweep.
	auditWorkers := flag.Int("audit-workers", 1, "verifier worker pool for the audit-running figures (1 = sequential/paper-faithful, 0 = all CPUs)")
	jsonOut := flag.String("json", "", "machine-readable mode: measure the headline numbers (Fig-8 audit cost per request, serve req/s, speedup, dedup ratio) and write them as JSON to this file ('-' = stdout), instead of printing figures")
	engineName := flag.String("engine", "compiled", "language execution engine for the figures (interp, compiled or bytecode); -json measures all three regardless")
	maxGroup := flag.Int("max-group", 0, "cap requests re-executed per SIMD batch in the audits behind the figures (0 = verifier default of 3000); lane-width experiments, verdicts identical at any setting")
	flag.Parse()
	benchMaxGroup = *maxGroup

	eng, err := lang.EngineByName(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orochi-bench: %v\n", err)
		os.Exit(2)
	}
	// The figures build servers and verifiers in many places; routing the
	// flag through the process-wide default keeps every nil-Engine path on
	// the selected engine.
	lang.DefaultEngine = eng

	if *jsonOut != "" {
		benchJSON(*jsonOut, *scale, *conc, *auditWorkers)
		return
	}

	switch *fig {
	case "8":
		fig8(*scale, *conc, *auditWorkers)
	case "8lat":
		fig8lat(*scale, *conc)
	case "9":
		fig9(*scale, *conc, *auditWorkers)
	case "10":
		fig10()
	case "11":
		fig11(*scale, *conc, *auditWorkers)
	case "workers":
		figWorkers(*scale, *conc)
	case "serve":
		figServe(*scale)
	case "fleet":
		figFleet(*scale, *conc)
	case "all":
		fig8(*scale, *conc, *auditWorkers)
		fig9(*scale, *conc, *auditWorkers)
		fig10()
		fig11(*scale, *conc, *auditWorkers)
		figFrontier()
		figWorkers(*scale, *conc)
		figServe(*scale)
		figFleet(*scale, *conc)
		fig8lat(*scale, *conc)
	case "frontier":
		figFrontier()
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		os.Exit(2)
	}
}

// benchResult is one application's row of the -json output: the
// headline evaluation numbers in machine-readable form, so CI (and the
// committed BENCH_seed.json baseline) can diff runs without parsing the
// human tables.
type benchResult struct {
	App string `json:"app"`
	// Requests served (and audited) in the measured period.
	Requests int `json:"requests"`
	// ServeReqPerSec is recording-mode serving throughput.
	ServeReqPerSec float64 `json:"serve_req_per_sec"`
	// AuditNsPerReq is total audit time divided by requests (the Fig-8
	// audit-cost unit), and AuditSpeedup the baseline-replay time over
	// the deduplicated audit time (Fig-8's headline column).
	AuditNsPerReq int64   `json:"audit_ns_per_req"`
	AuditSpeedup  float64 `json:"audit_speedup"`
	// DedupRatio is requests replayed per re-executed group batch — the
	// same figure /-/metrics exposes as orochi_audit_dedup_ratio.
	DedupRatio float64 `json:"dedup_ratio"`
	// Storage compares the content-addressed epoch layout against the
	// whole-file (v1) layout for the same workload.
	Storage *storageResult `json:"storage,omitempty"`
}

// storageResult measures the sealed-epoch storage layer: the same
// workload is sealed twice — chunked (content-addressed) and
// whole-file (v1) — and the at-rest footprints and wall times compared.
type storageResult struct {
	// Epochs sealed in the measured chain.
	Epochs int `json:"epochs"`
	// LogicalBytes is what the manifests pin: the uncompressed
	// artifact bytes the chain vouches for.
	LogicalBytes int64 `json:"logical_bytes"`
	// StoredBytes/Chunks describe the chunk store at rest (per-chunk
	// gzip); WholeFileBytes is the v1 layout's at-rest footprint
	// (gzip-compressed whole artifacts) for the same workload.
	StoredBytes    int64 `json:"stored_bytes"`
	Chunks         int   `json:"chunks"`
	WholeFileBytes int64 `json:"whole_file_bytes"`
	// DedupRatio is logical bytes per stored byte (chunk sharing plus
	// compression; the console's orochi_storage_dedup_ratio).
	// ChunkShareRatio isolates chunk-level sharing: referenced chunk
	// bytes across all manifests per unique chunk byte (1.0 = no chunk
	// appears twice).
	DedupRatio      float64 `json:"dedup_ratio"`
	ChunkShareRatio float64 `json:"chunk_share_ratio"`
	// SealOverhead and LoadOverhead are chunked wall time over
	// whole-file wall time for serve+seal and for loading every sealed
	// epoch back (1.0 = free).
	SealOverhead float64 `json:"seal_overhead"`
	LoadOverhead float64 `json:"load_overhead"`
}

// engineResult is one execution engine's row of the -json "engine"
// section: the MediaWiki workload served and Fig-8-audited under that
// engine alone. Observables are engine-independent (the audit must
// ACCEPT under both); only the costs differ.
type engineResult struct {
	Engine string `json:"engine"`
	// ServeNsPerReq is summed handler CPU per request while recording;
	// AuditNsPerReq is the Fig-8 audit-cost unit under this engine.
	ServeNsPerReq int64 `json:"serve_ns_per_req"`
	AuditNsPerReq int64 `json:"audit_ns_per_req"`
	// AllocsPerReq is heap allocations per request across the serving
	// run (runtime.MemStats delta).
	AllocsPerReq uint64 `json:"allocs_per_req"`
}

// engineAuditResult is one application's row of the -json
// "engine_audit" section: the Fig-8 audit cost of the same recorded
// run re-executed under each engine. The serve is shared (verdicts are
// engine-independent, so the auditing engine is free to differ from
// the serving one); only Phase-3 re-execution cost varies.
type engineAuditResult struct {
	App string `json:"app"`
	// AuditNsPerReq maps engine name -> audit ns/request.
	AuditNsPerReq map[string]int64 `json:"audit_ns_per_req"`
}

// fleetResult is the -json "fleet" section: the distributed-audit
// stack (artifact server + coordinator + workers over loopback HTTP)
// measured against the same sealed chain at one worker and at a small
// fleet, plus the chunk-cache effect on wire bytes. Verdicts are the
// gate, not the measurement — every run must ACCEPT with the same
// ledger a single-process audit produces.
type fleetResult struct {
	// Epochs/Requests describe the sealed chain every run audits.
	Epochs   int `json:"epochs"`
	Requests int `json:"requests"`
	// Workers is the fleet width of the parallel run (capped at 4).
	Workers int `json:"workers"`
	// EpochsPerSec1/N are decided epochs per wall-second with one cold
	// worker vs Workers cold workers; Speedup is their ratio.
	EpochsPerSec1 float64 `json:"epochs_per_sec_1"`
	EpochsPerSecN float64 `json:"epochs_per_sec_n"`
	Speedup       float64 `json:"speedup"`
	// LogicalBytes is what the manifests pin; ColdFetchedBytes is what
	// a cache-less worker pulled over the wire for the whole chain;
	// WarmFetchedBytes is the same worker re-auditing a fresh copy of
	// the chain with its chunk cache kept (the dedup win).
	LogicalBytes     int64 `json:"logical_bytes"`
	ColdFetchedBytes int64 `json:"cold_fetched_bytes"`
	WarmFetchedBytes int64 `json:"warm_fetched_bytes"`
}

// benchOutput is the top-level -json document.
type benchOutput struct {
	Scale        int                 `json:"scale"`
	Concurrency  int                 `json:"concurrency"`
	AuditWorkers int                 `json:"audit_workers"`
	Results      []benchResult       `json:"results"`
	Engine       []engineResult      `json:"engine"`
	EngineAudit  []engineAuditResult `json:"engine_audit"`
	Fleet        *fleetResult        `json:"fleet,omitempty"`
}

// benchJSON measures each paper workload once (serve → baseline replay
// → deduplicated audit) and writes the results as JSON.
func benchJSON(path string, scale, conc, auditWorkers int) {
	out := benchOutput{Scale: scale, Concurrency: conc, AuditWorkers: auditWorkers}
	for _, item := range workloads(scale) {
		served, err := harness.Serve(item.w, harness.ServeConfig{Record: true, Concurrency: conc})
		check(err)
		baseAudit, err := harness.BaselineReplay(item.w, served)
		check(err)
		res, err := served.AuditContext(benchCtx, verifier.Options{Workers: auditWorkers, MaxGroup: benchMaxGroup})
		check(err)
		if !res.Accepted {
			fmt.Fprintf(os.Stderr, "%s: AUDIT REJECTED: %s\n", item.name, res.Reason)
			os.Exit(1)
		}
		dedup := 0.0
		if res.Stats.GroupBatches > 0 {
			dedup = float64(res.Stats.RequestsReplayed) / float64(res.Stats.GroupBatches)
		}
		out.Results = append(out.Results, benchResult{
			App:            item.name,
			Requests:       served.Requests,
			ServeReqPerSec: float64(served.Requests) / served.ServeWall.Seconds(),
			AuditNsPerReq:  res.Stats.Total.Nanoseconds() / int64(served.Requests),
			AuditSpeedup:   float64(baseAudit) / float64(res.Stats.Total),
			DedupRatio:     dedup,
			Storage:        storageBench(item.w, conc),
		})
	}
	out.Engine = engineBench(scale, conc, auditWorkers)
	out.EngineAudit = engineAuditBench(scale, conc, auditWorkers)
	out.Fleet = fleetBench(scale, conc)
	data, err := json.MarshalIndent(out, "", "  ")
	check(err)
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(path, data, 0o644)
	}
	check(err)
}

// engineBench measures the MediaWiki workload under each execution
// engine in turn: recording-mode serve cost, the Fig-8 audit cost, and
// serving allocations. The verdict must be ACCEPT under every engine.
func engineBench(scale, conc, auditWorkers int) []engineResult {
	w := workload.Wiki(workload.DefaultWikiParams().Scale(scale))
	var out []engineResult
	for _, name := range lang.Engines() {
		eng, err := lang.EngineByName(name)
		check(err)
		// Compile (and for the compiled engine, lower) outside the
		// measured window; the cache makes this free after the first hit.
		prog := w.App.Compile()
		warm := server.New(prog, server.Options{Record: false, Engine: eng})
		check(warm.Setup(w.App.Schema))
		if len(w.Requests) > 0 {
			warm.Process("warm-0", w.Requests[0])
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: conc, Engine: eng})
		check(err)
		runtime.ReadMemStats(&ms1)
		res, err := served.AuditContext(benchCtx, verifier.Options{Workers: auditWorkers, Engine: eng, MaxGroup: benchMaxGroup})
		check(err)
		if !res.Accepted {
			fmt.Fprintf(os.Stderr, "engine %s: AUDIT REJECTED: %s\n", name, res.Reason)
			os.Exit(1)
		}
		n := int64(served.Requests)
		out = append(out, engineResult{
			Engine:        name,
			ServeNsPerReq: served.ServeCPU.Nanoseconds() / n,
			AuditNsPerReq: res.Stats.Total.Nanoseconds() / n,
			AllocsPerReq:  (ms1.Mallocs - ms0.Mallocs) / uint64(n),
		})
	}
	return out
}

// engineAuditBench serves each paper workload once and audits the
// recorded run under every engine: the per-app Fig-8 audit cost as a
// function of the Phase-3 execution engine alone, with serving held
// constant. Every audit must ACCEPT — the engine is not an observable.
func engineAuditBench(scale, conc, auditWorkers int) []engineAuditResult {
	var out []engineAuditResult
	for _, item := range workloads(scale) {
		served, err := harness.Serve(item.w, harness.ServeConfig{Record: true, Concurrency: conc})
		check(err)
		row := engineAuditResult{App: item.name, AuditNsPerReq: make(map[string]int64)}
		// Round 0 is an unmeasured warm-up per engine (lazy lowering,
		// page cache); rounds 1..3 are measured and the best is kept.
		// Rounds are interleaved across engines rather than running each
		// engine's samples back-to-back: these audits are a few hundred
		// ms of wall time each, so a background hiccup or GC drift that
		// lands on one engine's whole block would skew the comparison,
		// while interleaving spreads it across all three.
		best := make(map[string]int64)
		for round := 0; round < 6; round++ {
			for _, name := range lang.Engines() {
				eng, err := lang.EngineByName(name)
				check(err)
				// GC fence: without it, garbage from the previous
				// engine's audit gets collected inside — and charged
				// to — this engine's wall time.
				runtime.GC()
				res, err := served.AuditContext(benchCtx, verifier.Options{Workers: auditWorkers, Engine: eng, MaxGroup: benchMaxGroup})
				check(err)
				if !res.Accepted {
					fmt.Fprintf(os.Stderr, "%s under %s: AUDIT REJECTED: %s\n", item.name, name, res.Reason)
					os.Exit(1)
				}
				if round == 0 {
					continue
				}
				ns := res.Stats.Total.Nanoseconds() / int64(served.Requests)
				if b, ok := best[name]; !ok || ns < b {
					best[name] = ns
				}
			}
		}
		for name, ns := range best {
			row.AuditNsPerReq[name] = ns
		}
		out = append(out, row)
	}
	return out
}

// storageBench seals the workload twice — chunked and whole-file —
// into multi-epoch chains and measures footprints and overheads.
func storageBench(w *workload.Workload, conc int) *storageResult {
	sealChain := func(mode epoch.StorageMode) (string, time.Duration) {
		dir, err := os.MkdirTemp("", "orochi-bench-storage-")
		check(err)
		prog := w.App.Compile()
		srv := server.New(prog, server.Options{Record: true})
		check(srv.Setup(w.App.Schema))
		check(srv.Setup(w.Seed))
		// ~4 epochs: each request is a request+response event pair, and
		// serving in four bursts gives the manager balanced cut points.
		events := len(w.Requests) / 2
		if events < 32 {
			events = 32
		}
		mgr, err := epoch.StartManager(dir, srv, srv.Snapshot(), epoch.ManagerOptions{
			EpochEvents: events, Storage: mode})
		check(err)
		start := time.Now()
		q := (len(w.Requests) + 3) / 4
		for i := 0; i < len(w.Requests); i += q {
			end := i + q
			if end > len(w.Requests) {
				end = len(w.Requests)
			}
			srv.ServeAll(w.Requests[i:end], conc)
		}
		check(mgr.Close())
		return dir, time.Since(start)
	}
	loadChain := func(dir string) time.Duration {
		sealed, err := epoch.ListSealed(dir)
		check(err)
		start := time.Now()
		for _, s := range sealed {
			_, err := epoch.Load(s)
			check(err)
		}
		return time.Since(start)
	}

	chunkedDir, chunkedSeal := sealChain(epoch.StorageChunked)
	defer os.RemoveAll(chunkedDir)
	wholeDir, wholeSeal := sealChain(epoch.StorageWholeFile)
	defer os.RemoveAll(wholeDir)
	chunkedLoad := loadChain(chunkedDir)
	wholeLoad := loadChain(wholeDir)

	res := &storageResult{
		SealOverhead: float64(chunkedSeal) / float64(wholeSeal),
		LoadOverhead: float64(chunkedLoad) / float64(wholeLoad),
	}
	sealed, err := epoch.ListSealed(chunkedDir)
	check(err)
	res.Epochs = len(sealed)
	seen := map[string]bool{}
	var refBytes, uniqueBytes int64
	for _, s := range sealed {
		for _, r := range s.Manifest.ChunkRefs() {
			refBytes += r.Bytes
			if !seen[r.SHA256] {
				seen[r.SHA256] = true
				uniqueBytes += r.Bytes
			}
		}
	}
	res.LogicalBytes = refBytes
	if uniqueBytes > 0 {
		res.ChunkShareRatio = float64(refBytes) / float64(uniqueBytes)
	}
	store, err := epoch.OpenChainStore(chunkedDir)
	check(err)
	chunks, storedBytes, err := store.Stats()
	check(err)
	res.Chunks, res.StoredBytes = chunks, storedBytes
	if storedBytes > 0 {
		res.DedupRatio = float64(refBytes) / float64(storedBytes)
	}
	res.WholeFileBytes = dirFileBytes(wholeDir)
	return res
}

// fleetBench seals a chunked chain once and audits it through the
// fleet stack (artifact server + coordinator + RunWorker over loopback
// HTTP) three times: a cold single worker (the sequential reference
// and the wire bytes a cache-less worker must pull), the same worker
// again with its chunk cache kept (the warm bytes), and a cold
// N-worker fleet (the parallel wall-clock). Each run gets its own copy
// of the chain because the coordinator writes decisions and the chain
// ledger into the directory it audits.
func fleetBench(scale, conc int) *fleetResult {
	w := workload.Wiki(workload.DefaultWikiParams().Scale(scale))
	prog := w.App.Compile()

	src, err := os.MkdirTemp("", "orochi-bench-fleet-")
	check(err)
	defer os.RemoveAll(src)
	srv := server.New(prog, server.Options{Record: true})
	check(srv.Setup(w.App.Schema))
	check(srv.Setup(w.Seed))
	// ~8 epochs: a request is a request+response event pair, and
	// serving in eight bursts gives the manager balanced cut points —
	// enough epochs that a small fleet has parallelism to find.
	events := len(w.Requests) / 4
	if events < 32 {
		events = 32
	}
	mgr, err := epoch.StartManager(src, srv, srv.Snapshot(), epoch.ManagerOptions{
		EpochEvents: events, Storage: epoch.StorageChunked})
	check(err)
	q := (len(w.Requests) + 7) / 8
	for i := 0; i < len(w.Requests); i += q {
		end := i + q
		if end > len(w.Requests) {
			end = len(w.Requests)
		}
		srv.ServeAll(w.Requests[i:end], conc)
	}
	check(mgr.Close())

	runFleet := func(workers int, hots []cas.Store) (time.Duration, []fleet.WorkerStats, []epoch.Verdict) {
		dir, err := os.MkdirTemp("", "orochi-bench-fleet-run-")
		check(err)
		defer os.RemoveAll(dir)
		check(os.CopyFS(dir, os.DirFS(src)))
		as, err := fleet.NewArtifactServer(dir)
		check(err)
		coord, err := fleet.NewCoordinator(dir, fleet.CoordinatorOptions{RetryMS: 10})
		check(err)
		mux := http.NewServeMux()
		mux.Handle(fleet.Prefix+"/", as.Handler())
		coordHandler := coord.Handler()
		mux.Handle("POST "+fleet.Prefix+"/lease", coordHandler)
		mux.Handle("POST "+fleet.Prefix+"/verdict", coordHandler)
		mux.Handle("GET "+fleet.Prefix+"/epoch/{n}/init", coordHandler)
		ts := httptest.NewServer(mux)

		stats := make([]fleet.WorkerStats, workers)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				st, err := fleet.RunWorker(benchCtx, prog, fleet.WorkerOptions{
					Coordinator: ts.URL,
					Name:        fmt.Sprintf("bench-w%d", i),
					Hot:         hots[i],
					InitPoll:    5 * time.Millisecond,
				})
				check(err)
				stats[i] = st
			}(i)
		}
		check(coord.Wait(benchCtx))
		wall := time.Since(start)
		wg.Wait()
		ts.Close()
		if !coord.ChainAccepted() {
			fmt.Fprintln(os.Stderr, "orochi-bench: fleet audit REJECTED")
			os.Exit(1)
		}
		verdicts := coord.Verdicts()
		check(coord.Close())
		return wall, stats, verdicts
	}

	coldCache := cas.NewMemory()
	wall1, statsCold, verdicts := runFleet(1, []cas.Store{coldCache})
	_, statsWarm, _ := runFleet(1, []cas.Store{coldCache})
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 2 {
		n = 2
	}
	hots := make([]cas.Store, n)
	for i := range hots {
		hots[i] = cas.NewMemory()
	}
	wallN, _, _ := runFleet(n, hots)

	var requests int
	for _, v := range verdicts {
		requests += v.Requests
	}
	return &fleetResult{
		Epochs:           len(verdicts),
		Requests:         requests,
		Workers:          n,
		EpochsPerSec1:    float64(len(verdicts)) / wall1.Seconds(),
		EpochsPerSecN:    float64(len(verdicts)) / wallN.Seconds(),
		Speedup:          wall1.Seconds() / wallN.Seconds(),
		LogicalBytes:     statsCold[0].LogicalBytes,
		ColdFetchedBytes: statsCold[0].FetchedBytes,
		WarmFetchedBytes: statsWarm[0].FetchedBytes,
	}
}

// figFleet prints the fleet section as a table.
func figFleet(scale, conc int) {
	fmt.Printf("\n=== Distributed audit: fleet of workers over HTTP (scale 1/%d) ===\n", scale)
	fmt.Println("verdicts and ledger are identical at any worker count; the fleet buys")
	fmt.Println("wall-clock, and a worker's chunk cache keeps re-audits off the wire")
	r := fleetBench(scale, conc)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "epochs\trequests\tepochs/s (1 worker)\tepochs/s\tworkers\tspeedup\tcold fetch\twarm fetch\tlogical")
	fmt.Fprintf(tw, "%d\t%d\t%.1f\t%.1f\t%d\t%.2fx\t%dKB\t%dKB\t%dKB\n",
		r.Epochs, r.Requests, r.EpochsPerSec1, r.EpochsPerSecN, r.Workers, r.Speedup,
		r.ColdFetchedBytes/1024, r.WarmFetchedBytes/1024, r.LogicalBytes/1024)
	tw.Flush()
}

// dirFileBytes sums the at-rest bytes of every artifact file under a
// whole-file chain directory (segments, reports, init; manifests too —
// both layouts carry those).
func dirFileBytes(dir string) int64 {
	var total int64
	entries, err := os.ReadDir(dir)
	check(err)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, e.Name()))
		check(err)
		for _, f := range files {
			if fi, err := f.Info(); err == nil && !f.IsDir() {
				total += fi.Size()
			}
		}
	}
	return total
}

func workloads(scale int) []struct {
	name string
	w    *workload.Workload
} {
	return []struct {
		name string
		w    *workload.Workload
	}{
		{"MediaWiki", workload.Wiki(workload.DefaultWikiParams().Scale(scale))},
		{"phpBB", workload.Forum(workload.DefaultForumParams().Scale(scale))},
		{"HotCRP", workload.HotCRP(workload.DefaultHotCRPParams().Scale(scale))},
	}
}

// fig8 prints the Fig. 8 left table: audit speedup, server CPU overhead,
// report sizes, and DB overheads per application.
func fig8(scale, conc, auditWorkers int) {
	fmt.Printf("\n=== Figure 8 (left): OROCHI vs simple re-execution (scale 1/%d) ===\n", scale)
	fmt.Println("paper: speedup 10.9x/5.6x/6.2x; server ovhd 4.7%/8.6%/5.9%;")
	fmt.Println("       reports 1.7/0.3/0.4 KB/req; temp DB 1.0x/1.7x/1.5x; permanent 1x")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\treqs\taudit speedup\tserver CPU ovhd\treq avg\tbase rep/req\torochi rep/req\ttemp DB\tpermanent")
	for _, item := range workloads(scale) {
		// Server CPU overhead: compare per-request handler cost with and
		// without recording. Measured sequentially (concurrency 1) and
		// best-of-2 to keep scheduler noise out of a small difference.
		cpuBase := bestServeCPU(item.w, false, 2)
		cpuRec := bestServeCPU(item.w, true, 2)
		// Recording run under real concurrency: the audited execution.
		served, err := harness.Serve(item.w, harness.ServeConfig{Record: true, Concurrency: conc})
		check(err)
		// Baseline audit = sequential re-execution of the trace.
		baseAudit, err := harness.BaselineReplay(item.w, served)
		check(err)
		res, err := served.AuditContext(benchCtx, verifier.Options{Workers: auditWorkers, MaxGroup: benchMaxGroup})
		check(err)
		if !res.Accepted {
			fmt.Fprintf(os.Stderr, "%s: AUDIT REJECTED: %s\n", item.name, res.Reason)
			os.Exit(1)
		}
		sizes, err := served.Sizes()
		check(err)
		vdbBytes := res.FinalDB.SizeBytes()
		liveBytes := res.FinalDB.LiveSizeBytes()
		tempRatio := 1.0
		if liveBytes > 0 {
			tempRatio = float64(vdbBytes) / float64(liveBytes)
		}
		n := served.Requests
		fmt.Fprintf(tw, "%s\t%d\t%.1fx\t%.1f%%\t%.1fKB\t%.2fKB\t%.2fKB\t%.1fx\t1x\n",
			item.name, n,
			float64(baseAudit)/float64(res.Stats.Total),
			100*float64(cpuRec-cpuBase)/float64(cpuBase),
			float64(sizes.TraceBytes)/float64(n)/1024,
			float64(sizes.BaselineReportBytes)/float64(n)/1024,
			float64(sizes.ReportBytes)/float64(n)/1024,
			tempRatio)
	}
	tw.Flush()
}

// fig8lat prints the Fig. 8 right data: latency percentiles vs offered
// throughput for the phpBB workload, baseline vs OROCHI.
func fig8lat(scale, conc int) {
	fmt.Printf("\n=== Figure 8 (right): latency vs throughput, phpBB (scale 1/%d) ===\n", scale)
	fmt.Println("paper shape: OROCHI tracks the baseline with ~11-18% lower peak throughput")
	p := workload.DefaultForumParams().Scale(scale)
	if p.Requests > 4000 {
		p.Requests = 4000
	}
	w := workload.Forum(p)
	// Probe the server's peak rate to select offered loads.
	peak := probePeakRate(w, conc)
	rates := []float64{0.2 * peak, 0.4 * peak, 0.6 * peak, 0.8 * peak, 0.9 * peak}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\toffered req/s\tp50 ms\tp90 ms\tp99 ms\tachieved req/s")
	for _, record := range []bool{false, true} {
		label := "baseline"
		if record {
			label = "orochi"
		}
		for _, rate := range rates {
			p50, p90, p99, achieved := poissonRun(w, record, rate)
			fmt.Fprintf(tw, "%s\t%.0f\t%.2f\t%.2f\t%.2f\t%.0f\n", label, rate, p50, p90, p99, achieved)
		}
	}
	tw.Flush()
}

// bestServeCPU serves the workload sequentially `reps` times and returns
// the minimum summed handler time.
func bestServeCPU(w *workload.Workload, record bool, reps int) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < reps; i++ {
		served, err := harness.Serve(w, harness.ServeConfig{Record: record, Concurrency: 1})
		check(err)
		if served.ServeCPU < best {
			best = served.ServeCPU
		}
	}
	return best
}

// probePeakRate measures closed-loop throughput as the rate anchor.
func probePeakRate(w *workload.Workload, conc int) float64 {
	served, err := harness.Serve(w, harness.ServeConfig{Record: false, Concurrency: conc})
	check(err)
	return float64(served.Requests) / served.ServeWall.Seconds()
}

// poissonRun offers requests at the given rate with Poisson arrivals and
// returns latency percentiles (ms) and achieved throughput.
func poissonRun(w *workload.Workload, record bool, rate float64) (p50, p90, p99, achieved float64) {
	srv := provision(w, record)
	rng := rand.New(rand.NewSource(42))
	n := len(w.Requests)
	if n > 2000 {
		n = 2000
	}
	lats := make([]time.Duration, n)
	done := make(chan int, n)
	start := time.Now()
	go func() {
		for i := 0; i < n; i++ {
			// Exponential inter-arrival times.
			gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
			time.Sleep(gap)
			go func(i int) {
				t0 := time.Now()
				srv.Handle(w.Requests[i])
				lats[i] = time.Since(t0)
				done <- i
			}(i)
		}
	}()
	for i := 0; i < n; i++ {
		<-done
	}
	wall := time.Since(start)
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(q float64) float64 {
		idx := int(q * float64(len(sorted)-1))
		return float64(sorted[idx].Microseconds()) / 1000
	}
	return pct(0.50), pct(0.90), pct(0.99), float64(n) / wall.Seconds()
}

// provision builds a served-but-idle server carrying the workload's
// schema and seed state.
func provision(w *workload.Workload, record bool) interface {
	Handle(in trace.Input) (rid, body string)
} {
	served, err := harness.Serve(&workload.Workload{App: w.App, Seed: w.Seed},
		harness.ServeConfig{Record: record, Concurrency: 1})
	check(err)
	return served.Server
}

// fig9 prints the audit-cost decomposition.
func fig9(scale, conc, auditWorkers int) {
	fmt.Printf("\n=== Figure 9: decomposition of audit-time CPU costs (scale 1/%d) ===\n", scale)
	fmt.Println("paper shape: PHP re-execution dominates; ProcOpRep/DB-redo are small;")
	fmt.Println("             query dedup keeps 'DB query' far below baseline DB time")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tbaseline total\taudit total\tPHP\tDB query\tProcOpRep\tDB redo\tother\tdedup hit rate")
	for _, item := range workloads(scale) {
		served, err := harness.Serve(item.w, harness.ServeConfig{Record: true, Concurrency: conc})
		check(err)
		base, err := harness.BaselineReplay(item.w, served)
		check(err)
		res, err := served.AuditContext(benchCtx, verifier.Options{Workers: auditWorkers, MaxGroup: benchMaxGroup})
		check(err)
		if !res.Accepted {
			fmt.Fprintf(os.Stderr, "%s: AUDIT REJECTED: %s\n", item.name, res.Reason)
			os.Exit(1)
		}
		st := res.Stats
		hitRate := 0.0
		if st.DedupHits+st.DedupMisses > 0 {
			hitRate = float64(st.DedupHits) / float64(st.DedupHits+st.DedupMisses)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%.0f%%\n",
			item.name, round(base), round(st.Total),
			round(st.ReExec-st.DBQuery), round(st.DBQuery),
			round(st.ProcOpRep), round(st.DBRedo), round(st.Other),
			100*hitRate)
	}
	tw.Flush()
}

// fig10 prints per-instruction costs: unmodified vs univalent vs the
// fixed/marginal decomposition of multivalent execution.
func fig10() {
	fmt.Println("\n=== Figure 10: instruction costs (normalized to unmodified) ===")
	fmt.Println("paper shape: multivalent fixed cost is high; marginal cost is around")
	fmt.Println("             the unmodified cost — so wins come from collapse, not SIMD")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "instruction\tunmodified ns\tunivalent\tmultival fixed\tmultival marginal")
	cats := []string{"Multiply", "Concat", "Isset", "Jump", "GetVal",
		"ArraySet", "Iteration", "Microtime", "Increment", "NewArray"}
	empty := emptyLoopProgram()
	for _, cat := range cats {
		// Compile once per category, outside every timed window: the four
		// measurements below reuse the same program.
		prog := instrProgram(cat)
		base := measureInstr(prog, empty, "plain", 1)
		uni := measureInstr(prog, empty, "simd-same", 4)
		c2 := measureInstr(prog, empty, "simd-diff", 2)
		c16 := measureInstr(prog, empty, "simd-diff", 16)
		marginal := (c16 - c2) / 14
		if marginal < 0 {
			marginal = 0 // measurement noise on lane-independent ops
		}
		fixed := c2 - 2*marginal
		if fixed < 0 {
			fixed = 0
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.2fx\t%.2fx\t%.2fx\n",
			cat, base, uni/base, fixed/base, marginal/base)
	}
	tw.Flush()
}

var fig10Bodies = map[string]string{
	"Multiply":  `$x = $m * 3;`,
	"Concat":    `$x = $m . "x";`,
	"Isset":     `$x = isset($m);`,
	"Jump":      `if ($u > 0) { $x = 1; }`,
	"GetVal":    `$x = $m;`,
	"ArraySet":  `$arr["k"] = $m;`,
	"Iteration": `foreach ($pair as $v) { $x = $v; }`,
	"Microtime": `$x = microtime();`,
	"Increment": `$m++;`,
	"NewArray":  `$x = [];`,
}

type instrBridge struct{ n int64 }

func (b *instrBridge) RegisterRead(string, int, string) (lang.Value, error) { return nil, nil }
func (b *instrBridge) RegisterWrite(string, int, string, lang.Value) error  { return nil }
func (b *instrBridge) KvGet(string, int, string) (lang.Value, error)        { return nil, nil }
func (b *instrBridge) KvSet(string, int, string, lang.Value) error          { return nil }
func (b *instrBridge) DBOp(string, int, []string) (lang.Value, error)       { return lang.NewArray(), nil }
func (b *instrBridge) NonDet(string, string, []lang.Value) (lang.Value, error) {
	b.n++
	return float64(b.n), nil
}

const instrIters = 20000

// instrProgram compiles the category's measurement loop (content-keyed
// cache: identical sources compile once per process).
func instrProgram(cat string) *lang.Program {
	src := fmt.Sprintf(`
$u = 7;
$m = intval($_GET["seed"]);
$arr = [];
$pair = [1, 2];
for ($i = 0; $i < %d; $i++) {
  %s
}
echo "done";`, instrIters, fig10Bodies[cat])
	return lang.MustCompileCached(map[string]string{"m": src})
}

// emptyLoopProgram compiles the empty-loop baseline shared by every
// category.
func emptyLoopProgram() *lang.Program {
	return lang.MustCompileCached(map[string]string{"m": fmt.Sprintf(`
$u = 7;
$m = intval($_GET["seed"]);
$arr = [];
$pair = [1, 2];
for ($i = 0; $i < %d; $i++) {
}
echo "done";`, instrIters)})
}

// measureInstr times one loop iteration of the precompiled category
// program (ns per logical instruction execution). Compilation happens in
// the callers, never inside the timed window.
func measureInstr(prog, empty *lang.Program, mode string, lanes int) float64 {
	const iters = instrIters
	rids := make([]string, lanes)
	ins := make([]lang.RequestInput, lanes)
	for i := range rids {
		rids[i] = fmt.Sprintf("r%d", i)
		seed := "5"
		if mode == "simd-diff" {
			seed = fmt.Sprint(i + 1)
		}
		ins[i] = lang.RequestInput{Get: map[string]string{"seed": seed}}
	}
	cfg := lang.Config{Script: "m", RIDs: rids, Inputs: ins}
	if mode == "plain" {
		cfg.Mode = lang.ModePlain
	} else {
		cfg.Mode = lang.ModeSIMD
		cfg.Bridge = &instrBridge{}
	}
	// Subtract the empty-loop baseline to isolate the body cost. One
	// untimed warm-up run per program keeps lazy lowering (the compiled
	// engine's first-run cost) out of the measurement.
	timeRun := func(p *lang.Program) float64 {
		if _, err := lang.Run(p, cfg); err != nil {
			check(err)
		}
		best := math.MaxFloat64
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			if _, err := lang.Run(p, cfg); err != nil {
				check(err)
			}
			el := float64(time.Since(start).Nanoseconds())
			if el < best {
				best = el
			}
		}
		return best
	}
	full := timeRun(prog)
	base := timeRun(empty)
	per := (full - base) / iters
	if per < 0.1 {
		per = 0.1
	}
	return per
}

// fig11 prints the control-flow group triples for the wiki workload.
func fig11(scale, conc, auditWorkers int) {
	fmt.Printf("\n=== Figure 11: control-flow groups, MediaWiki workload (scale 1/%d) ===\n", scale)
	fmt.Println("paper shape: many groups with large n; alpha > 0.95 for all groups")
	w := workload.Wiki(workload.DefaultWikiParams().Scale(scale))
	served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: conc})
	check(err)
	res, err := served.AuditContext(benchCtx, verifier.Options{CollectStats: true, Workers: auditWorkers, MaxGroup: benchMaxGroup})
	check(err)
	if !res.Accepted {
		fmt.Fprintf(os.Stderr, "AUDIT REJECTED: %s\n", res.Reason)
		os.Exit(1)
	}
	groups := res.Stats.Groups
	sort.Slice(groups, func(i, j int) bool { return groups[i].N > groups[j].N })
	nBig := 0
	var alphaMin, alphaSum float64 = 1, 0
	for _, g := range groups {
		if g.N > 1 {
			nBig++
		}
		alphaSum += g.Alpha
		if g.Alpha < alphaMin {
			alphaMin = g.Alpha
		}
	}
	fmt.Printf("total groups: %d; groups with n>1: %d; mean alpha %.3f; min alpha %.3f\n",
		len(groups), nBig, alphaSum/float64(len(groups)), alphaMin)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "script\tn (requests)\tl (instructions)\talpha")
	for i, g := range groups {
		if i >= 20 {
			fmt.Fprintf(tw, "... %d more groups\t\t\t\n", len(groups)-20)
			break
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f\n", g.Script, g.N, g.Len, g.Alpha)
	}
	tw.Flush()
}

// figWorkers sweeps the verifier's worker pool in the style of `go test
// -cpu`: each workload is served once, then audited at 1, 2, 4, ...
// workers, reporting the audit time and the speedup over the sequential
// (one-worker) audit. The verdict must be identical at every width.
func figWorkers(scale, conc int) {
	max := runtime.GOMAXPROCS(0)
	fmt.Printf("\n=== Parallel audit: worker sweep 1..%d (scale 1/%d) ===\n", max, scale)
	fmt.Println("groups re-execute independently (§3.1, §4.7): audit time should")
	fmt.Println("shrink with workers while the verdict stays bit-identical")
	var widths []int
	for wN := 1; wN < max; wN *= 2 {
		widths = append(widths, wN)
	}
	widths = append(widths, max)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "app"
	for _, wN := range widths {
		header += fmt.Sprintf("\tw=%d", wN)
	}
	fmt.Fprintln(tw, header+"\tspeedup")
	for _, item := range workloads(scale) {
		served, err := harness.Serve(item.w, harness.ServeConfig{Record: true, Concurrency: conc})
		check(err)
		row := item.name
		var seq, best time.Duration
		for _, wN := range widths {
			// Best of 2 runs per width to keep scheduler noise out.
			var t time.Duration = math.MaxInt64
			for rep := 0; rep < 2; rep++ {
				res, err := served.AuditContext(benchCtx, verifier.Options{Workers: wN, MaxGroup: benchMaxGroup})
				check(err)
				if !res.Accepted {
					fmt.Fprintf(os.Stderr, "%s: AUDIT REJECTED at %d workers: %s\n", item.name, wN, res.Reason)
					os.Exit(1)
				}
				if res.Stats.Total < t {
					t = res.Stats.Total
				}
			}
			if wN == 1 {
				seq = t
			}
			if best == 0 || t < best {
				best = t
			}
			row += "\t" + round(t)
		}
		fmt.Fprintf(tw, "%s\t%.2fx\n", row, float64(seq)/float64(best))
	}
	tw.Flush()
}

// figServe sweeps serving concurrency for the recording executor,
// comparing one lock stripe (≈ the old global-mutex serving path) with
// the default sharded configuration. Each cell serves the workload once
// (best of 2) and reports requests/second; the sharded column should
// keep climbing with goroutine count where the single stripe flattens.
func figServe(scale int) {
	maxConc := runtime.GOMAXPROCS(0)
	fmt.Printf("\n=== Serving throughput vs concurrency: striped vs single-stripe (scale 1/%d) ===\n", scale)
	fmt.Println("per-object shard locks + lock-free executor stats: serving should scale")
	fmt.Println("with in-flight requests instead of serializing on global mutexes")
	var widths []int
	for c := 1; c < maxConc; c *= 2 {
		widths = append(widths, c)
	}
	widths = append(widths, maxConc)
	rate := func(w *workload.Workload, conc, shards int) float64 {
		best := 0.0
		for rep := 0; rep < 2; rep++ {
			served, err := harness.Serve(w, harness.ServeConfig{Record: true, Concurrency: conc, Shards: shards})
			check(err)
			if r := float64(served.Requests) / served.ServeWall.Seconds(); r > best {
				best = r
			}
		}
		return best
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tconcurrency\tshards=1 req/s\tsharded req/s\tspeedup")
	for _, item := range workloads(scale) {
		for _, conc := range widths {
			one := rate(item.w, conc, 1)
			many := rate(item.w, conc, 0)
			fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.2fx\n", item.name, conc, one, many, many/one)
		}
	}
	tw.Flush()
}

// figFrontier compares CreateTimePrecedenceGraph with the quadratic
// transitive-reduction baseline (§3.5, §A.8).
func figFrontier() {
	fmt.Println("\n=== §3.5: time-precedence graph construction (frontier vs prior work) ===")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "requests\tconcurrency P\tedges Z\tfrontier\tquadratic baseline")
	for _, x := range []int{1000, 5000} {
		for _, p := range []int{1, 8, 32} {
			tr := epochTrace(x, p)
			start := time.Now()
			g, err := core.CreateTimePrecedenceGraph(tr)
			check(err)
			fast := time.Since(start)
			quad := time.Duration(0)
			if x <= 1000 {
				start = time.Now()
				core.CreateTimePrecedenceGraphQuadratic(tr)
				quad = time.Since(start)
			}
			quadStr := "(skipped)"
			if quad > 0 {
				quadStr = round(quad)
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%s\n", x, p, g.EdgeCount, round(fast), quadStr)
		}
	}
	tw.Flush()
}

func epochTrace(nReq, lanes int) *trace.Trace {
	var evs []trace.Event
	var clock int64
	for e := 0; e < nReq/lanes; e++ {
		for p := 0; p < lanes; p++ {
			clock++
			evs = append(evs, trace.Event{Kind: trace.Request, RID: fmt.Sprintf("e%dp%d", e, p), Time: clock})
		}
		for p := 0; p < lanes; p++ {
			clock++
			evs = append(evs, trace.Event{Kind: trace.Response, RID: fmt.Sprintf("e%dp%d", e, p), Time: clock})
		}
	}
	return &trace.Trace{Events: evs}
}

func round(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func check(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "orochi-bench:", err)
	if errors.Is(err, verifier.ErrAuditCanceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
