package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"orochi/internal/cas"
	"orochi/internal/console"
	"orochi/internal/fleet"
	"orochi/internal/lang"
	"orochi/internal/verifier"
)

// fleetListen binds addr and serves handler with the same explicit
// timeouts every listener in the repo carries, until ctx is cancelled.
// It returns the bound address (addr may carry port 0 in tests).
func fleetListen(ctx context.Context, addr string, handler http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	stop := func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ln.Addr().String(), stop, nil
}

// serveArtifactsCmd runs a standalone artifact server over an epoch
// chain: manifests and chunks for fleet workers, plus /-/metrics. Read
// only — it takes no chain lock, so it can serve a chain a live
// orochi-serve is still sealing into.
func serveArtifactsCmd(ctx context.Context, dir, addr string) {
	as, err := fleet.NewArtifactServer(dir)
	exitOn(err)
	con := console.New(console.Options{FleetArtifacts: as})
	mux := http.NewServeMux()
	mux.Handle("/-/", con.Handler())
	mux.Handle(fleet.Prefix+"/", as.Handler())
	bound, stop, err := fleetListen(ctx, addr, mux)
	exitOn(err)
	defer stop()
	fmt.Printf("serving artifacts for %s on %s (Ctrl-C to stop)\n", dir, bound)
	<-ctx.Done()
	st := as.Stats()
	fmt.Printf("served %d chunks (%d bytes)\n", st.ChunksServed, st.BytesServed)
}

// coordinateCmd runs a fleet audit of an epoch chain: artifact server,
// coordinator, and console on one listener. It blocks until every
// sealed epoch is decided (or the chain breaks), prints the ledger in
// exactly the single-process auditor's format, and exits with the same
// status codes.
func coordinateCmd(ctx context.Context, dir, addr string, opts fleet.CoordinatorOptions) {
	lock := lockChainOrExit(dir, "-coordinate")
	defer lock.Unlock()
	as, err := fleet.NewArtifactServer(dir)
	exitOn(err)
	coord, err := fleet.NewCoordinator(dir, opts)
	exitOn(err)
	defer coord.Close()
	con := console.New(console.Options{FleetArtifacts: as, FleetCoordinator: coord})
	mux := http.NewServeMux()
	mux.Handle("/-/", con.Handler())
	mux.Handle(fleet.Prefix+"/", as.Handler())
	// The coordinator's patterns are more specific than the artifact
	// subtree, so both mount under the same prefix.
	coordHandler := coord.Handler()
	mux.Handle("POST "+fleet.Prefix+"/lease", coordHandler)
	mux.Handle("POST "+fleet.Prefix+"/verdict", coordHandler)
	mux.Handle("GET "+fleet.Prefix+"/epoch/{n}/init", coordHandler)
	bound, stop, err := fleetListen(ctx, addr, mux)
	exitOn(err)
	defer stop()
	fmt.Printf("coordinating fleet audit of %s on %s\n", dir, bound)

	err = coord.Wait(ctx)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "orochi-audit: fleet audit interrupted; completed verdicts are stored, rerun to resume")
		os.Exit(130)
	}
	exitOn(err)
	for _, warn := range coord.Warnings() {
		fmt.Fprintln(os.Stderr, "orochi-audit:", warn)
	}
	printFleetLedger(dir, coord, opts.To)
}

// printFleetLedger renders the coordinator's ledger in auditEpochs'
// exact format — the bit-identical output the fleet gate compares.
func printFleetLedger(dir string, coord *fleet.Coordinator, to int64) {
	verdicts := coord.Verdicts()
	if len(verdicts) == 0 {
		fmt.Fprintf(os.Stderr, "orochi-audit: no sealed epochs to audit in %s\n", dir)
		os.Exit(2)
	}
	var requests int
	for _, v := range verdicts {
		requests += v.Requests
		if v.Accepted {
			fmt.Printf("epoch %d: ACCEPT — %d requests, %d events, audit %v (chain %.12s)\n",
				v.Epoch, v.Requests, v.Events, v.AuditTime, v.ChainSHA)
		} else {
			fmt.Printf("epoch %d: REJECT — %s (chain %.12s)\n", v.Epoch, v.Reason, v.ChainSHA)
		}
	}
	last := verdicts[len(verdicts)-1]
	if !coord.ChainAccepted() {
		fmt.Printf("chain verdict: REJECT at epoch %d (ledger %.12s)\n", last.Epoch, last.ChainSHA)
		fmt.Printf("(stored forensics: orochi-audit -epochs %s -explain %d)\n", dir, last.Epoch)
		os.Exit(1)
	}
	if gap := coord.Incomplete(); gap > 0 {
		unreachable, err := sealedPastGap(dir, gap, to)
		exitOn(err)
		fmt.Printf("chain verdict: INCOMPLETE — epoch %d is not sealed but %d later sealed epoch(s) exist and cannot be verified\n",
			gap, unreachable)
		os.Exit(1)
	}
	fmt.Printf("chain verdict: ACCEPT — %d epochs, %d requests (ledger %.12s)\n",
		len(verdicts), requests, last.ChainSHA)
}

// workerCmd runs a fleet audit worker against a coordinator until the
// chain is fully decided.
func workerCmd(ctx context.Context, prog *lang.Program, opts fleet.WorkerOptions, cacheDir string) {
	if cacheDir != "" {
		hot, err := cas.OpenFS(cacheDir)
		exitOn(err)
		opts.Hot = hot
	}
	opts.OnEpoch = func(r fleet.EpochReport) {
		verdict := "ACCEPT"
		if !r.Accepted {
			verdict = fmt.Sprintf("REJECT — %s", r.Reason)
		}
		tag := ""
		if r.CrossCheck {
			tag = " [cross-check]"
		}
		fmt.Printf("epoch %d: %s%s (fetched %d of %d bytes)\n",
			r.Epoch, verdict, tag, r.FetchedBytes, r.LogicalBytes)
	}
	stats, err := fleet.RunWorker(ctx, prog, opts)
	if errors.Is(err, context.Canceled) || errors.Is(err, verifier.ErrAuditCanceled) {
		fmt.Fprintln(os.Stderr, "orochi-audit: worker interrupted")
		os.Exit(130)
	}
	exitOn(err)
	fmt.Printf("worker %s done: %d epochs audited (%d accepted, %d rejected, %d abandoned), %d of %d bytes fetched\n",
		stats.Name, stats.Epochs, stats.Accepted, stats.Rejected, stats.Abandoned,
		stats.FetchedBytes, stats.LogicalBytes)
}
