// Command orochi-audit verifies a recorded serving period from disk: it
// loads the application sources, the collector's trace, the executor's
// (untrusted) reports, and the initial object snapshot, runs the full
// SSCO audit, and reports ACCEPT or REJECT with the cost decomposition.
//
//	orochi-audit -app wiki -trace trace.bin -reports reports.bin -state state.bin
//	orochi-audit -src ./myapp -trace ... -reports ... -state ...
//
// Exit status: 0 = accepted, 1 = rejected, 2 = usage/IO error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"orochi/internal/apps"
	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/trace"
	"orochi/internal/verifier"
)

func main() {
	appName := flag.String("app", "", "built-in application to audit (wiki, forum, hotcrp)")
	srcDir := flag.String("src", "", "directory of application sources (alternative to -app)")
	tracePath := flag.String("trace", "", "trace file from the collector")
	repPath := flag.String("reports", "", "report bundle from the executor")
	statePath := flag.String("state", "", "initial object snapshot (optional; empty state if absent)")
	maxGroup := flag.Int("maxgroup", 3000, "maximum requests per re-execution batch")
	stats := flag.Bool("stats", false, "print per-group statistics")
	flag.Parse()

	if *tracePath == "" || *repPath == "" {
		fmt.Fprintln(os.Stderr, "orochi-audit: -trace and -reports are required")
		flag.Usage()
		os.Exit(2)
	}

	prog, err := loadProgram(*appName, *srcDir)
	exitOn(err)

	tr, err := trace.ReadFile(*tracePath)
	exitOn(err)
	repData, err := os.ReadFile(*repPath)
	exitOn(err)
	rep, err := reports.Decode(repData)
	exitOn(err)
	init := object.EmptySnapshot()
	if *statePath != "" {
		init, err = object.ReadSnapshotFile(*statePath)
		exitOn(err)
	}

	res, err := verifier.Audit(prog, tr, rep, init, verifier.Options{
		MaxGroup:     *maxGroup,
		CollectStats: *stats,
	})
	exitOn(err)

	st := res.Stats
	fmt.Printf("requests: %d   ops: %d   groups: %d\n",
		tr.RequestCount(), rep.TotalOps(), len(rep.Groups))
	fmt.Printf("audit time: %v (procopre %v, db redo %v, re-exec %v [db query %v], other %v)\n",
		st.Total, st.ProcOpRep, st.DBRedo, st.ReExec, st.DBQuery, st.Other)
	if st.DedupHits+st.DedupMisses > 0 {
		fmt.Printf("query dedup: %d hits / %d issued\n", st.DedupHits, st.DedupHits+st.DedupMisses)
	}
	if *stats {
		for _, g := range st.Groups {
			fmt.Printf("  group %016x %-14s n=%-6d len=%-8d alpha=%.3f\n",
				g.Tag, g.Script, g.N, g.Len, g.Alpha)
		}
	}
	if res.Accepted {
		fmt.Println("verdict: ACCEPT — responses are consistent with the program")
		return
	}
	fmt.Printf("verdict: REJECT — %s\n", res.Reason)
	os.Exit(1)
}

func loadProgram(appName, srcDir string) (*lang.Program, error) {
	switch {
	case appName != "" && srcDir != "":
		return nil, fmt.Errorf("orochi-audit: use only one of -app and -src")
	case appName != "":
		app := apps.ByName(appName)
		if app == nil {
			return nil, fmt.Errorf("orochi-audit: unknown app %q (want wiki, forum or hotcrp)", appName)
		}
		return app.Compile(), nil
	case srcDir != "":
		entries, err := os.ReadDir(srcDir)
		if err != nil {
			return nil, err
		}
		files := map[string]string{}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".php") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
			if err != nil {
				return nil, err
			}
			files[strings.TrimSuffix(e.Name(), ".php")] = string(data)
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("orochi-audit: no .php files in %s", srcDir)
		}
		return lang.Compile(files)
	default:
		return nil, fmt.Errorf("orochi-audit: one of -app or -src is required")
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "orochi-audit:", err)
		os.Exit(2)
	}
}
