// Command orochi-audit verifies a recorded serving period from disk: it
// loads the application sources, the collector's trace, the executor's
// (untrusted) reports, and the initial object snapshot, runs the full
// SSCO audit, and reports ACCEPT or REJECT with the cost decomposition.
//
//	orochi-audit -app wiki -trace trace.bin -reports reports.bin -state state.bin
//	orochi-audit -src ./myapp -trace ... -reports ... -state ...
//
// Re-execution fans out across all CPUs by default; -audit-workers N
// bounds the worker pool (1 = sequential). The verdict is identical at
// any worker count.
//
// With -epochs it instead verifies an epoch chain produced by
// orochi-serve's epoch pipeline: each sealed epoch's segments and
// report bundle are integrity-checked against the manifest digests, the
// manifests' hash chain is validated, and the epochs are audited in
// sequence — epoch N+1's trusted initial state is epoch N's verified
// final snapshot. -from/-to select a sub-range; auditing from the
// middle resumes from the checkpoint a previous run persisted.
//
//	orochi-audit -app wiki -epochs ./epochs
//	orochi-audit -app wiki -epochs ./epochs -from 3 -to 5
//
// Long audits are cancellable and observable: SIGINT/SIGTERM abandons
// the audit cleanly (no verdict is recorded for the interrupted epoch —
// cancellation is never a REJECT — and a later run re-audits it), and
// -progress streams phase and per-group progress to stderr.
//
// Storage maintenance (with -epochs, no re-audit):
//
//	orochi-audit -epochs ./epochs -gc -gc-dry-run   # report sweepable chunks
//	orochi-audit -epochs ./epochs -gc               # sweep unreferenced chunks
//	orochi-audit -epochs ./epochs -gc -retain 30    # also compact verified epochs older than the newest 30
//	orochi-audit -epochs ./epochs -scrub            # retrievability self-audit (challenge-reads sampled chunks)
//
// -gc keeps every chunk any sealed manifest references, so the chain
// stays fully re-auditable; with -retain N, epochs older than the
// newest N that hold a stored ACCEPT decision and a checkpoint are
// compacted to exactly those two artifacts. -scrub walks the manifest
// hash chain and challenge-reads sampled chunks; a failure is recorded
// in the chain's decision log — as a scrub annotation on an epoch that
// already holds a decision (the stored verdict and its resolution
// stand), or as a fresh REJECT decision for a never-audited epoch.
//
// Both -gc and -scrub take the chain directory's exclusive lock and
// refuse to run while a live orochi-serve is sealing into it: GC would
// read an in-flight seal's chunks as orphans, and a second decision-log
// writer could race a live append.
//
// Exit status: 0 = accepted, 1 = rejected (or scrub failures),
// 2 = usage/IO error, 130 = canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"orochi/internal/apps"
	"orochi/internal/epoch"
	"orochi/internal/fleet"
	"orochi/internal/lang"
	"orochi/internal/object"
	"orochi/internal/reports"
	"orochi/internal/trace"
	"orochi/internal/verifier"
	"orochi/internal/workload"
)

func main() {
	appName := flag.String("app", "", "built-in application to audit (wiki, forum, hotcrp)")
	srcDir := flag.String("src", "", "directory of application sources (alternative to -app)")
	tracePath := flag.String("trace", "", "trace file from the collector")
	repPath := flag.String("reports", "", "report bundle from the executor")
	statePath := flag.String("state", "", "initial object snapshot (optional; empty state if absent)")
	epochsDir := flag.String("epochs", "", "audit an epoch chain directory instead of single trace/report files")
	from := flag.Int64("from", 0, "first epoch to audit (with -epochs; default 1, >1 resumes from a checkpoint)")
	to := flag.Int64("to", 0, "last epoch to audit (with -epochs; default: all sealed)")
	workers := flag.Int("workers", 2, "epochs loaded/integrity-checked concurrently (with -epochs)")
	auditWorkers := flag.Int("audit-workers", 0, "concurrent re-execution workers inside each audit (0 = all CPUs, 1 = sequential)")
	checkpoints := flag.Bool("checkpoints", true, "persist verified final snapshots for resumable audits (with -epochs)")
	maxGroup := flag.Int("maxgroup", 3000, "maximum requests per re-execution batch")
	stats := flag.Bool("stats", false, "print per-group statistics")
	progress := flag.Bool("progress", false, "stream audit progress (phases, groups re-executed, ops replayed) to stderr")
	withErrors := flag.Bool("with-errors", false, "the serve run injected faulting requests (orochi-serve -fault-rate); audit against the app extended with the fault scripts")
	explain := flag.Int64("explain", 0, "render the stored decision (verdict, forensics, timings) for this epoch from -epochs' decision log and exit; reads the log only, no re-audit")
	gc := flag.Bool("gc", false, "garbage-collect -epochs' chunk store (sweep unreferenced chunks) and exit; no re-audit")
	gcDryRun := flag.Bool("gc-dry-run", false, "with -gc: report what would be compacted and swept without deleting anything")
	retain := flag.Int("retain", 0, "with -gc: compact verified epochs older than the newest N to decision+checkpoint (0 = no compaction)")
	scrub := flag.Bool("scrub", false, "run the retrievability self-audit over -epochs and exit; failures are recorded in the decision log (REJECT for never-audited epochs, an annotation otherwise)")
	scrubSample := flag.Int("scrub-sample", 0, "with -scrub: chunks challenged per epoch (default 16, -1 = every chunk)")
	engineName := flag.String("engine", "compiled", "language execution engine (interp, compiled or bytecode); verdicts are identical under any")
	serveArtifacts := flag.String("serve-artifacts", "", "serve -epochs' manifests and chunks to fleet workers on this address (e.g. :8090) until interrupted; no audit")
	coordinate := flag.String("coordinate", "", "coordinate a distributed audit of -epochs on this address: serve artifacts, lease epochs to -worker processes, collect signed verdicts")
	workerMode := flag.Bool("worker", false, "run as a fleet audit worker pulling epoch leases (needs -coordinator and -app/-src)")
	coordinatorURL := flag.String("coordinator", "", "coordinator base URL for -worker (e.g. http://host:8090)")
	artifactsURL := flag.String("artifacts", "", "artifact server base URL for -worker (default: the coordinator)")
	fleetKey := flag.String("fleet-key", "", "shared HMAC key authenticating fleet traffic (must match across coordinator and workers; empty = unsigned)")
	crossCheck := flag.Float64("cross-check", 0, "fraction of epochs audited on -cross-check-k workers before the verdict is believed (with -coordinate; 1 = every epoch)")
	crossCheckK := flag.Int("cross-check-k", 2, "independent verdicts required for a cross-checked epoch (with -coordinate)")
	leaseTimeout := flag.Duration("lease-timeout", 2*time.Minute, "inactivity timeout before an epoch lease is reassigned (with -coordinate)")
	workerCache := flag.String("worker-cache", "", "directory for the worker's persistent chunk cache (default: in-memory; a warm cache fetches only missing chunks)")
	workerName := flag.String("worker-name", "", "worker identity in leases and forensics (default host:pid)")
	flag.Parse()

	engine, engErr := lang.EngineByName(*engineName)
	if engErr != nil {
		fmt.Fprintf(os.Stderr, "orochi-audit: %v\n", engErr)
		os.Exit(2)
	}

	if *explain > 0 {
		if *epochsDir == "" {
			fmt.Fprintln(os.Stderr, "orochi-audit: -explain needs -epochs (the chain directory holding the decision log)")
			os.Exit(2)
		}
		explainEpoch(*epochsDir, *explain)
		return
	}

	// SIGINT/SIGTERM cancel the audit: the verifier abandons its work
	// between tasks and returns ErrAuditCanceled — never a verdict.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *gc {
		if *epochsDir == "" {
			fmt.Fprintln(os.Stderr, "orochi-audit: -gc needs -epochs (the chain directory to collect)")
			os.Exit(2)
		}
		lock := lockChainOrExit(*epochsDir, "-gc")
		defer lock.Unlock()
		gcChain(*epochsDir, epoch.GCOptions{DryRun: *gcDryRun, Retain: *retain})
		return
	}
	if *scrub {
		if *epochsDir == "" {
			fmt.Fprintln(os.Stderr, "orochi-audit: -scrub needs -epochs (the chain directory to challenge)")
			os.Exit(2)
		}
		lock := lockChainOrExit(*epochsDir, "-scrub")
		defer lock.Unlock()
		scrubChain(ctx, *epochsDir, *scrubSample)
		return
	}

	vopts := verifier.Options{MaxGroup: *maxGroup, CollectStats: *stats, Workers: *auditWorkers, Engine: engine}
	if *progress {
		vopts.Observer = &progressPrinter{}
	}

	if *workerMode {
		if *coordinatorURL == "" {
			fmt.Fprintln(os.Stderr, "orochi-audit: -worker needs -coordinator (the coordinator's base URL)")
			os.Exit(2)
		}
		prog, err := loadProgram(*appName, *srcDir, *withErrors)
		exitOn(err)
		workerCmd(ctx, prog, fleet.WorkerOptions{
			Coordinator: strings.TrimSuffix(*coordinatorURL, "/"),
			Artifacts:   strings.TrimSuffix(*artifactsURL, "/"),
			Name:        *workerName,
			Key:         []byte(*fleetKey),
			Verify:      vopts,
		}, *workerCache)
		return
	}
	if *serveArtifacts != "" {
		if *epochsDir == "" {
			fmt.Fprintln(os.Stderr, "orochi-audit: -serve-artifacts needs -epochs (the chain directory to serve)")
			os.Exit(2)
		}
		serveArtifactsCmd(ctx, *epochsDir, *serveArtifacts)
		return
	}
	if *coordinate != "" {
		if *epochsDir == "" {
			fmt.Fprintln(os.Stderr, "orochi-audit: -coordinate needs -epochs (the chain directory to audit)")
			os.Exit(2)
		}
		coordinateCmd(ctx, *epochsDir, *coordinate, fleet.CoordinatorOptions{
			LeaseTimeout: *leaseTimeout,
			CrossCheck:   *crossCheck,
			CrossCheckK:  *crossCheckK,
			Key:          []byte(*fleetKey),
			To:           *to,
		})
		return
	}

	if *epochsDir != "" {
		if *tracePath != "" || *repPath != "" || *statePath != "" {
			fmt.Fprintln(os.Stderr, "orochi-audit: -epochs replaces -trace/-reports/-state")
			os.Exit(2)
		}
		prog, err := loadProgram(*appName, *srcDir, *withErrors)
		exitOn(err)
		auditEpochs(ctx, prog, *epochsDir, *from, *to, *workers, *checkpoints, vopts)
		return
	}

	if *tracePath == "" || *repPath == "" {
		fmt.Fprintln(os.Stderr, "orochi-audit: -trace and -reports are required (or -epochs)")
		flag.Usage()
		os.Exit(2)
	}

	prog, err := loadProgram(*appName, *srcDir, *withErrors)
	exitOn(err)

	tr, err := trace.ReadFile(*tracePath)
	exitOn(err)
	repData, err := os.ReadFile(*repPath)
	exitOn(err)
	rep, err := reports.Decode(repData)
	exitOn(err)
	init := object.EmptySnapshot()
	if *statePath != "" {
		init, err = object.ReadSnapshotFile(*statePath)
		exitOn(err)
	}

	res, err := verifier.AuditContext(ctx, prog, tr, rep, init, vopts)
	exitOn(err)

	st := res.Stats
	fmt.Printf("requests: %d   ops: %d   groups: %d\n",
		tr.RequestCount(), rep.TotalOps(), len(rep.Groups))
	fmt.Printf("audit time: %v (procopre %v, db redo %v, re-exec %v [db query %v], other %v)\n",
		st.Total, st.ProcOpRep, st.DBRedo, st.ReExec, st.DBQuery, st.Other)
	if st.DedupHits+st.DedupMisses > 0 {
		fmt.Printf("query dedup: %d hits / %d issued\n", st.DedupHits, st.DedupHits+st.DedupMisses)
	}
	if *stats {
		for _, g := range st.Groups {
			fmt.Printf("  group %016x %-14s n=%-6d len=%-8d alpha=%.3f\n",
				g.Tag, g.Script, g.N, g.Len, g.Alpha)
		}
	}
	if res.Accepted {
		fmt.Println("verdict: ACCEPT — responses are consistent with the program")
		return
	}
	fmt.Printf("verdict: REJECT — %s\n", res.Reason)
	os.Exit(1)
}

// explainEpoch renders one epoch's stored decision — the durable record
// the auditor appended when it published the verdict — without touching
// the chain's evidence or re-running anything. Exit status mirrors the
// verdict: 0 for ACCEPT, 1 for REJECT, 2 when no decision exists.
func explainEpoch(dir string, n int64) {
	decisions, err := epoch.ReadDecisions(dir)
	if os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "orochi-audit: no decision log in %s (has anything been audited there?)\n", dir)
		os.Exit(2)
	}
	exitOn(err)
	for _, d := range decisions {
		if d.Epoch == n {
			writeDecision(os.Stdout, d)
			if !d.Accepted {
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "orochi-audit: no decision recorded for epoch %d in %s\n", n, dir)
	os.Exit(2)
}

// writeDecision renders a stored decision for terminals.
func writeDecision(w io.Writer, d epoch.Decision) {
	verdict := "ACCEPT"
	if !d.Accepted {
		verdict = "REJECT"
	}
	fmt.Fprintf(w, "epoch %d: %s", d.Epoch, verdict)
	if d.Reason != "" {
		fmt.Fprintf(w, " — %s", d.Reason)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "decided: %s   resolution: %s", d.DecidedAt.Format(time.RFC3339), d.Resolution)
	if d.Note != "" {
		fmt.Fprintf(w, " (%s at %s)", d.Note, d.AckedAt.Format(time.RFC3339))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "evidence: %d requests, %d events   manifest %.12s   chain %.12s\n",
		d.Requests, d.Events, d.ManifestSHA, d.ChainSHA)
	if d.ScrubFailed {
		fmt.Fprintf(w, "scrub: FAILED %s — %s\n", d.ScrubAt.Format(time.RFC3339), d.ScrubDetail)
	}
	if d.Timings.Total > 0 {
		fmt.Fprintf(w, "audit time: %v (procopre %v, db redo %v, re-exec %v [db query %v], other %v)\n",
			d.Timings.Total, d.Timings.ProcOpRep, d.Timings.DBRedo, d.Timings.ReExec, d.Timings.DBQuery, d.Timings.Other)
	}
	if d.GroupBatches > 0 {
		fmt.Fprintf(w, "dedup: %d requests replayed in %d group batches (%.1f req/batch)\n",
			d.RequestsReplayed, d.GroupBatches, float64(d.RequestsReplayed)/float64(d.GroupBatches))
	}
	if d.Forensics != nil {
		fmt.Fprintln(w, "forensics:")
		for _, line := range strings.Split(d.Forensics.String(), "\n") {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
}

// lockChainOrExit takes the chain directory's exclusive lock for a
// maintenance pass. Maintenance mutates the chunk store and the
// decision log, so running it against a chain a live orochi-serve is
// sealing into must fail up front, not corrupt the chain.
func lockChainOrExit(dir, op string) *epoch.ChainLock {
	lock, err := epoch.LockChain(dir)
	if errors.Is(err, epoch.ErrChainBusy) {
		fmt.Fprintf(os.Stderr, "orochi-audit: %s refused: %s is in use by a live process (orochi-serve?); stop it first\n", op, dir)
		os.Exit(2)
	}
	exitOn(err)
	return lock
}

// gcChain runs one garbage-collection pass and prints what it did.
func gcChain(dir string, opts epoch.GCOptions) {
	res, err := epoch.GC(dir, opts)
	exitOn(err)
	mode := ""
	if opts.DryRun {
		mode = " (dry run — nothing deleted)"
	}
	if len(res.Compacted) > 0 {
		fmt.Printf("compacted %d epoch(s) to decision+checkpoint: %v%s\n", len(res.Compacted), res.Compacted, mode)
	}
	if len(res.Skipped) > 0 {
		fmt.Printf("skipped %d retention candidate(s) without an ACCEPT decision and checkpoint: %v\n", len(res.Skipped), res.Skipped)
	}
	fmt.Printf("gc: %d epochs scanned, %d live chunks, %d chunks swept (%d bytes at rest)%s\n",
		res.Epochs, res.LiveChunks, res.SweptChunks, res.SweptBytes, mode)
}

// scrubChain runs one retrievability pass, records failures in the
// decision log (see epoch.RecordScrubFailures), and exits 1 when any
// challenge failed.
func scrubChain(ctx context.Context, dir string, sample int) {
	res, err := epoch.Scrub(ctx, dir, epoch.ScrubOptions{Sample: sample})
	exitOn(err)
	fmt.Printf("scrub: %d epochs (%d compacted), %d chunks + %d files challenged\n",
		res.Epochs, res.Compacted, res.ChunksChecked, res.FilesChecked)
	if res.OK() {
		fmt.Println("scrub verdict: ACCEPT — every challenged artifact intact and retrievable")
		return
	}
	for _, f := range res.Failures {
		fmt.Printf("scrub FAIL: %s\n", f)
	}
	log, err := epoch.OpenDecisionLog(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "orochi-audit: scrub failures could not be recorded:", err)
		os.Exit(1)
	}
	defer log.Close()
	n, err := epoch.RecordScrubFailures(log, dir, res)
	if err != nil {
		fmt.Fprintln(os.Stderr, "orochi-audit: scrub failures could not be recorded:", err)
		os.Exit(1)
	}
	fmt.Printf("scrub verdict: REJECT — %d failed challenge(s), %d recorded in the decision log\n", len(res.Failures), n)
	os.Exit(1)
}

// auditEpochs verifies a sealed epoch chain and prints the ledger.
func auditEpochs(ctx context.Context, prog *lang.Program, dir string, from, to int64, workers int, checkpoints bool, verify verifier.Options) {
	stats := verify.CollectStats
	opts := epoch.AuditorOptions{
		Workers:     workers,
		From:        from,
		To:          to,
		Checkpoints: checkpoints,
		Verify:      verify,
	}
	if from > 1 {
		snap, err := epoch.LoadCheckpoint(dir, from-1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orochi-audit: -from %d needs the verified snapshot of epoch %d "+
				"(run a full audit with -checkpoints first): %v\n", from, from-1, err)
			os.Exit(2)
		}
		opts.Init = snap
	}
	a := epoch.NewAuditor(prog, dir, opts)
	_, err := a.DrainSealed(ctx, 200*time.Millisecond, func(err error) {
		fmt.Fprintln(os.Stderr, "orochi-audit:", err)
	})
	exitOn(err)
	verdicts := a.Verdicts()
	if len(verdicts) == 0 {
		fmt.Fprintf(os.Stderr, "orochi-audit: no sealed epochs to audit in %s\n", dir)
		os.Exit(2)
	}
	var requests int
	for _, v := range verdicts {
		requests += v.Requests
		if v.Accepted {
			fmt.Printf("epoch %d: ACCEPT — %d requests, %d events, audit %v (chain %.12s)\n",
				v.Epoch, v.Requests, v.Events, v.AuditTime, v.ChainSHA)
			if stats {
				for _, g := range v.Stats.Groups {
					fmt.Printf("    group %016x %-14s n=%-6d len=%-8d alpha=%.3f\n",
						g.Tag, g.Script, g.N, g.Len, g.Alpha)
				}
			}
		} else {
			fmt.Printf("epoch %d: REJECT — %s (chain %.12s)\n", v.Epoch, v.Reason, v.ChainSHA)
		}
	}
	last := verdicts[len(verdicts)-1]
	if !a.ChainAccepted() {
		fmt.Printf("chain verdict: REJECT at epoch %d (ledger %.12s)\n", last.Epoch, last.ChainSHA)
		fmt.Printf("(stored forensics: orochi-audit -epochs %s -explain %d)\n", dir, last.Epoch)
		os.Exit(1)
	}
	// A seal gap (epoch N unsealed while a later epoch is sealed) means
	// the chain cannot be verified past N: evidence is missing, which
	// must not read as a clean ACCEPT of the whole directory. An error
	// here means completeness could not be checked at all — also not an
	// ACCEPT.
	unreachable, err := sealedPastGap(dir, a.NextEpoch(), to)
	exitOn(err)
	if unreachable > 0 {
		fmt.Printf("chain verdict: INCOMPLETE — epoch %d is not sealed but %d later sealed epoch(s) exist and cannot be verified\n",
			a.NextEpoch(), unreachable)
		os.Exit(1)
	}
	fmt.Printf("chain verdict: ACCEPT — %d epochs, %d requests (ledger %.12s)\n",
		len(verdicts), requests, last.ChainSHA)
}

// sealedPastGap counts sealed epochs at or after next (bounded by -to)
// that the auditor could not reach because an earlier epoch is missing.
func sealedPastGap(dir string, next, to int64) (int, error) {
	sealed, err := epoch.ListSealed(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, s := range sealed {
		if s.Number >= next && (to == 0 || s.Number <= to) {
			n++
		}
	}
	return n, nil
}

func loadProgram(appName, srcDir string, withErrors bool) (*lang.Program, error) {
	switch {
	case appName != "" && srcDir != "":
		return nil, fmt.Errorf("orochi-audit: use only one of -app and -src")
	case appName != "":
		app := apps.ByName(appName)
		if app == nil {
			return nil, fmt.Errorf("orochi-audit: unknown app %q (want wiki, forum or hotcrp)", appName)
		}
		if withErrors {
			app = workload.WithErrorScripts(app)
		}
		return app.Compile(), nil
	case srcDir != "":
		if withErrors {
			return nil, fmt.Errorf("orochi-audit: -with-errors applies only to -app (add the fault scripts to your -src directory instead)")
		}
		entries, err := os.ReadDir(srcDir)
		if err != nil {
			return nil, err
		}
		files := map[string]string{}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".php") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
			if err != nil {
				return nil, err
			}
			files[strings.TrimSuffix(e.Name(), ".php")] = string(data)
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("orochi-audit: no .php files in %s", srcDir)
		}
		return lang.CompileCached(files)
	default:
		return nil, fmt.Errorf("orochi-audit: one of -app or -src is required")
	}
}

func exitOn(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "orochi-audit:", err)
	if errors.Is(err, verifier.ErrAuditCanceled) {
		// Interrupted, not faulted: no verdict exists either way, and a
		// later run picks up exactly where the evidence stands.
		os.Exit(130)
	}
	os.Exit(2)
}

// progressPrinter streams the verifier's observer callbacks to stderr
// (-progress). With -audit-workers > 1 the group and op callbacks fire
// concurrently, so all state sits behind one mutex.
type progressPrinter struct {
	mu    sync.Mutex
	units int
	done  int
	ops   int64
}

func (p *progressPrinter) PhaseStart(phase string, units int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.units, p.done = units, 0
	if phase == verifier.PhaseRedo {
		// One printer observes every epoch of a chain audit; the ops
		// figure is per-phase, not cumulative across epochs.
		p.ops = 0
	}
	if units > 0 {
		fmt.Fprintf(os.Stderr, "audit: %s (%d work items)\n", phase, units)
	} else {
		fmt.Fprintf(os.Stderr, "audit: %s\n", phase)
	}
}

func (p *progressPrinter) PhaseEnd(phase string, took time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if phase == verifier.PhaseRedo && p.ops > 0 {
		fmt.Fprintf(os.Stderr, "audit: %s done in %v (%d ops replayed)\n", phase, took.Round(time.Millisecond), p.ops)
		return
	}
	fmt.Fprintf(os.Stderr, "audit: %s done in %v\n", phase, took.Round(time.Millisecond))
}

func (p *progressPrinter) GroupReexecuted(script string, tag uint64, requests int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	fmt.Fprintf(os.Stderr, "audit: re-executed group %016x %s (n=%d) [%d/%d]\n",
		tag, script, requests, p.done, p.units)
}

func (p *progressPrinter) OpsReplayed(ops int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ops += int64(ops)
}

func (p *progressPrinter) Verdict(accepted bool, reason string) {}
