// Command orochi-serve fronts one of the sample applications with a real
// net/http server, playing the online phase of OROCHI: the embedded
// collector records the trace at the HTTP boundary (the paper's
// middlebox), the recording runtime produces reports, and on shutdown
// (or on demand via /-/flush) the trace, reports, and initial snapshot
// are written to disk for cmd/orochi-audit.
//
//	orochi-serve -app wiki -listen :8090 -out ./audit-data
//
// Application scripts map to URL paths: GET /view?page=X runs the "view"
// script with $_GET['page']='X'; POST bodies become $_POST; cookies
// become $_COOKIE. Two control endpoints exist outside the audited
// surface: /-/flush writes the artifacts, /-/stats reports counters.
//
// Optionally, -drive N self-drives the server with N workload requests
// through HTTP (a built-in load generator), then flushes and exits —
// the zero-setup path to produce audit artifacts.
//
// With -epoch-dir the server runs the epoch pipeline instead of the
// monolithic flush: the trace streams into durable checksummed log
// segments, epochs are sealed every -epoch-events events (at balanced
// boundaries), and a background auditor verifies sealed epochs while
// serving continues. GET /-/epochs reports the live pipeline state and
// the per-epoch verdict ledger; cmd/orochi-audit -epochs <dir> verifies
// the chain offline.
//
//	orochi-serve -app wiki -drive 2000 -epoch-events 500 -epoch-dir ./epochs
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"orochi/internal/apps"
	"orochi/internal/console"
	"orochi/internal/epoch"
	"orochi/internal/fleet"
	"orochi/internal/httpfront"
	"orochi/internal/lang"
	"orochi/internal/server"
	"orochi/internal/trace"
	"orochi/internal/verifier"
	"orochi/internal/workload"
)

func main() {
	appName := flag.String("app", "wiki", "application to serve (wiki, forum, hotcrp)")
	listen := flag.String("listen", ":8090", "listen address")
	outDir := flag.String("out", "audit-data", "directory for trace/reports/state artifacts")
	drive := flag.Int("drive", 0, "self-drive N workload requests over HTTP, then flush and exit")
	conc := flag.Int("concurrency", 8, "self-drive concurrency")
	epochDir := flag.String("epoch-dir", "", "enable the epoch pipeline, writing sealed epochs to this directory")
	epochEvents := flag.Int("epoch-events", 4096, "seal an epoch after this many trace events (with -epoch-dir)")
	epochAudit := flag.Bool("epoch-audit", true, "run the background auditor over sealed epochs (with -epoch-dir)")
	storage := flag.String("storage", "", "sealed-epoch storage layout (with -epoch-dir): chunked (content-addressed, deduplicated; default) or whole-file (the v1 layout)")
	scrubEvery := flag.Duration("scrub-interval", 0, "run the retrievability self-audit over the epoch dir at this interval (with -epoch-dir; 0 = off); failures become REJECT decisions")
	auditWorkers := flag.Int("audit-workers", 0, "concurrent re-execution workers in the background auditor (0 = half the CPUs, to leave room for serving; 1 = sequential)")
	faultRate := flag.Float64("fault-rate", 0, "inject faulting requests (unknown script, undefined function, bad SQL) into the workload at this rate; the audit must still ACCEPT")
	shards := flag.Int("shards", 0, "lock-stripe count for the object store and recorder (0 = default); reports are identical at every setting")
	tamperReq := flag.Int64("tamper-request", 0, "misbehaving-executor demo: corrupt the Nth audited request's response between the executor and the collector — the collector records (and the client sees) the tampered bytes, and the audit must REJECT naming that request")
	engineName := flag.String("engine", "compiled", "language execution engine (interp, compiled or bytecode); observables are identical under any")
	maxGroup := flag.Int("max-group", 0, "cap requests re-executed per SIMD batch in the background auditor (0 = verifier default of 3000); verdicts are identical at any setting")
	flag.Parse()

	eng, err := lang.EngineByName(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orochi-serve: %v\n", err)
		os.Exit(2)
	}

	app := apps.ByName(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "orochi-serve: unknown app %q\n", *appName)
		os.Exit(2)
	}
	var w *workload.Workload
	switch *appName {
	case "wiki":
		p := workload.DefaultWikiParams().Scale(20)
		w = workload.Wiki(p)
	case "forum":
		p := workload.DefaultForumParams().Scale(20)
		w = workload.Forum(p)
	case "hotcrp":
		p := workload.DefaultHotCRPParams().Scale(20)
		w = workload.HotCRP(p)
	}
	if *faultRate > 0 {
		// Faulted requests are first-class auditable outcomes: the mix
		// produces canonical 500s that the audit re-executes and accepts.
		w = workload.WithErrors(w, workload.ErrorMixParams{Rate: *faultRate, Seed: 42})
	}

	prog := w.App.Compile()
	srv := server.New(prog, server.Options{Record: true, Shards: *shards, Engine: eng})
	exitOn(srv.Setup(w.App.Schema))
	exitOn(srv.Setup(w.Seed))
	snap := srv.Snapshot()

	// Epoch mode: stream the trace into durable segments and audit
	// sealed epochs in the background. Classic mode: buffer in RAM and
	// flush one artifact set on demand.
	var mgr *epoch.Manager
	var auditor *epoch.Auditor
	var scrubber *epoch.Scrubber
	var stopAudit, stopScrub context.CancelFunc
	var auditDone chan struct{}
	if *epochDir != "" {
		mode, err := epoch.ParseStorageMode(*storage)
		exitOn(err)
		mgr, err = epoch.StartManager(*epochDir, srv, snap, epoch.ManagerOptions{EpochEvents: *epochEvents, Storage: mode})
		exitOn(err)
		if *epochAudit {
			// The background auditor shares the machine with live
			// serving: default its worker pool to half the CPUs so epoch
			// audits don't starve request handling.
			vw := *auditWorkers
			if vw <= 0 {
				vw = max(1, runtime.GOMAXPROCS(0)/2)
			}
			auditor = epoch.NewAuditor(prog, *epochDir, epoch.AuditorOptions{
				Notify:      mgr.Notify(),
				Checkpoints: true,
				Verify:      verifier.Options{Workers: vw, Engine: eng, MaxGroup: *maxGroup},
			})
			var auditCtx context.Context
			auditCtx, stopAudit = context.WithCancel(context.Background())
			auditDone = make(chan struct{})
			go func() {
				defer close(auditDone)
				// A cancelled Run is the expected shutdown path: the epoch
				// it was verifying publishes no verdict and is re-audited by
				// the catch-up drain below.
				if err := auditor.Run(auditCtx); err != nil && !errors.Is(err, context.Canceled) {
					fmt.Fprintln(os.Stderr, "orochi-serve: auditor:", err)
				}
			}()
		}
		if *scrubEvery > 0 {
			// The scrubber must share the auditor's decision log — two
			// writers on one decisions.jsonl would corrupt the event
			// stream. Without a background auditor it opens the log itself.
			var dlog *epoch.DecisionLog
			if auditor != nil {
				dlog = auditor.Decisions()
			} else {
				var err error
				dlog, err = epoch.OpenDecisionLog(*epochDir)
				exitOn(err)
			}
			scrubber = epoch.NewScrubber(*epochDir, dlog, epoch.ScrubberOptions{Interval: *scrubEvery})
			var scrubCtx context.Context
			scrubCtx, stopScrub = context.WithCancel(context.Background())
			go scrubber.Run(scrubCtx)
		}
	} else {
		exitOn(os.MkdirAll(*outDir, 0o755))
		exitOn(snap.WriteFile(filepath.Join(*outDir, "state.bin")))
	}

	var flushMu sync.Mutex
	flush := func() error {
		flushMu.Lock()
		defer flushMu.Unlock()
		if err := srv.Trace().WriteFile(filepath.Join(*outDir, "trace.bin")); err != nil {
			return err
		}
		rep := srv.Reports()
		data, err := rep.Encode()
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*outDir, "reports.bin"), data, 0o644)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/-/flush", func(rw http.ResponseWriter, r *http.Request) {
		if mgr != nil {
			http.Error(rw, "epoch mode: artifacts are sealed continuously under "+*epochDir+"; see /-/epochs", http.StatusConflict)
			return
		}
		if err := flush(); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(rw, "flushed to %s\n", *outDir)
	})
	// The operations console serves everything else under /-/: the live
	// throughput counters (/-/stats), the epoch timeline and verdict
	// ledger (/-/epochs and the JSON API), and Prometheus metrics
	// (/-/metrics). /-/flush above shadows the console's mux because it
	// needs this process's flush closure.
	// In epoch mode the chain's manifests and chunks are also served to
	// fleet audit workers under /-/fleet/ (everything there is pinned by
	// digest, so serving it is read-only and trust-free).
	var artifacts *fleet.ArtifactServer
	if mgr != nil {
		var aerr error
		artifacts, aerr = fleet.NewArtifactServer(*epochDir)
		exitOn(aerr)
		mux.Handle(fleet.Prefix+"/", artifacts.Handler())
	}
	con := console.New(console.Options{Server: srv, Manager: mgr, Auditor: auditor, Scrubber: scrubber,
		FleetArtifacts: artifacts})
	mux.Handle(httpfront.ControlPrefix, con.Handler())
	// The audited surface is the shared HTTP front door: the embedded
	// collector as middleware in front of the executor
	// (internal/httpfront) — the same library path the tests and
	// examples use. Control endpoints under /-/ are registered on the
	// mux above it and never enter the trace. With -tamper-request a
	// corrupting middleware sits between the collector and the executor,
	// modelling a misbehaving serving stack: the trace (and the client)
	// get the tampered bytes, and the audit must REJECT with forensics
	// naming the request.
	front := httpfront.Handler(srv)
	if *tamperReq > 0 {
		front = httpfront.Collector(srv.Collector, tamper(*tamperReq, httpfront.Exec(srv)))
	}
	mux.Handle("/", front)

	httpSrv := &http.Server{Addr: *listen, Handler: mux, ReadHeaderTimeout: 10 * time.Second}

	// Graceful shutdown — triggered by the driver finishing or by
	// SIGINT/SIGTERM — drains in-flight requests before main proceeds,
	// so the final epoch is cut at a balanced point (and classic mode
	// can flush a complete artifact set). httpSrv.Shutdown waits for
	// open HTTP connections; the InFlight poll below is the
	// belt-and-suspenders check that the executor itself is idle before
	// the final epoch is sealed.
	drained := make(chan struct{}, 2)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		for srv.InFlight() > 0 && ctx.Err() == nil {
			time.Sleep(5 * time.Millisecond)
		}
		drained <- struct{}{}
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		shutdown()
	}()

	if *drive > 0 {
		go func() {
			if err := driveWorkload(*listen, w, *drive, *conc); err != nil {
				fmt.Fprintln(os.Stderr, "orochi-serve: drive:", err)
			}
			if mgr == nil {
				if err := flush(); err != nil {
					fmt.Fprintln(os.Stderr, "orochi-serve: flush:", err)
				}
				fmt.Printf("drove %d requests; artifacts in %s\n", *drive, *outDir)
			}
			shutdown()
		}()
	}

	if mgr != nil {
		fmt.Printf("serving %s on %s (epoch pipeline -> %s, sealing every %d events; GET /-/epochs for status)\n",
			*appName, *listen, *epochDir, *epochEvents)
	} else {
		fmt.Printf("serving %s on %s (artifacts -> %s; POST /-/flush to write them)\n",
			*appName, *listen, *outDir)
	}
	err = httpSrv.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		exitOn(err)
	}
	<-drained

	if mgr == nil && *drive == 0 {
		// Interactive classic mode: flush a complete artifact set on
		// graceful shutdown so Ctrl-C never loses the period.
		if err := flush(); err != nil {
			fmt.Fprintln(os.Stderr, "orochi-serve: flush:", err)
		} else {
			fmt.Printf("flushed artifacts to %s\n", *outDir)
		}
	}

	if mgr != nil {
		// In-flight requests have drained, so the final epoch ends at a
		// balanced point: seal it and let the auditor catch up with
		// everything that sealed.
		if stopScrub != nil {
			stopScrub()
		}
		exitOn(mgr.Close())
		if auditor != nil {
			// Stop the background loop before the catch-up pass so two
			// RunOnce calls never interleave.
			stopAudit()
			<-auditDone
			_, derr := auditor.DrainSealed(context.Background(), 200*time.Millisecond, func(err error) {
				fmt.Fprintln(os.Stderr, "orochi-serve:", err)
			})
			exitOn(derr)
			printLedger(os.Stdout, mgr, auditor)
			if !auditor.ChainAccepted() {
				os.Exit(1)
			}
		} else {
			st := mgr.Status()
			fmt.Printf("sealed %d epochs under %s (audit with: orochi-audit -app %s -epochs %s)\n",
				len(st.Sealed), *epochDir, *appName, *epochDir)
		}
	}
}

// tamper returns middleware for between the collector and the executor
// that corrupts the body of the nth audited request (1-based, counted in
// arrival order at this middleware). Everything downstream of the
// collector is the untrusted executor in the paper's model; this is the
// one-flag way to demonstrate that the audit catches a serving stack
// that returns bytes the program never produced. The corrupted response
// is what the collector records and the client receives, so reports and
// trace disagree and the audit REJECTs with forensics naming the rid.
func tamper(nth int64, next http.Handler) http.Handler {
	var count atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid, _, ok := httpfront.RecordedFrom(r.Context())
		if !ok || count.Add(1) != nth {
			next.ServeHTTP(w, r)
			return
		}
		buf := &bufferedResponse{ResponseWriter: w}
		next.ServeHTTP(buf, r)
		body := buf.buf.Bytes()
		if len(body) > 0 {
			body[0] ^= 0x20 // flip one bit of the first byte
		} else {
			body = []byte("tampered")
		}
		fmt.Fprintf(os.Stderr, "orochi-serve: tampering with response of request %s\n", rid)
		if buf.code != 0 && buf.code != http.StatusOK {
			w.WriteHeader(buf.code)
		}
		_, _ = w.Write(body)
	})
}

// bufferedResponse captures a downstream handler's body so tamper can
// rewrite it before it reaches the collector's capture.
type bufferedResponse struct {
	http.ResponseWriter
	buf  bytes.Buffer
	code int
}

func (b *bufferedResponse) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) { return b.buf.Write(p) }

// printLedger prints the final audit ledger at shutdown.
func printLedger(wr io.Writer, mgr *epoch.Manager, auditor *epoch.Auditor) {
	st := mgr.Status()
	verdicts := auditor.Verdicts()
	fmt.Fprintf(wr, "sealed %d epochs; audited %d\n", len(st.Sealed), len(verdicts))
	for _, v := range verdicts {
		if v.Accepted {
			fmt.Fprintf(wr, "  epoch %d: ACCEPT — %d requests in %v (chain %.12s)\n",
				v.Epoch, v.Requests, v.AuditTime, v.ChainSHA)
		} else {
			fmt.Fprintf(wr, "  epoch %d: REJECT — %s (chain %.12s)\n", v.Epoch, v.Reason, v.ChainSHA)
		}
	}
	if auditor.ChainAccepted() {
		fmt.Fprintln(wr, "chain verdict: ACCEPT")
	} else {
		fmt.Fprintln(wr, "chain verdict: REJECT")
	}
}

// driveWorkload replays workload requests through the HTTP front end,
// cycling through the workload when n exceeds the generated pool.
func driveWorkload(listen string, w *workload.Workload, n, conc int) error {
	base := "http://127.0.0.1" + listen
	if !strings.HasPrefix(listen, ":") {
		base = "http://" + listen
	}
	// Wait for the listener. The probe client carries its own timeout —
	// http.Get would hang forever on a wedged listener — and the probe
	// body must be drained and closed, or every failed poll leaks a
	// connection.
	probe := &http.Client{Timeout: 2 * time.Second}
	for i := 0; i < 50; i++ {
		resp, err := probe.Get(base + "/-/stats")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if len(w.Requests) == 0 {
		return fmt.Errorf("empty workload")
	}
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		in := w.Requests[i%len(w.Requests)]
		wg.Add(1)
		sem <- struct{}{}
		go func(in trace.Input) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := sendOne(base, in); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(in)
	}
	wg.Wait()
	return firstErr
}

// driveClient sends the driver's audited requests; like every client in
// the repo it carries an explicit timeout instead of DefaultClient's
// wait-forever.
var driveClient = &http.Client{Timeout: 60 * time.Second}

func sendOne(base string, in trace.Input) error {
	req, err := httpfront.NewRequest(base, in)
	if err != nil {
		return err
	}
	resp, err := driveClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "orochi-serve:", err)
		os.Exit(2)
	}
}
