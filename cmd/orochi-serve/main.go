// Command orochi-serve fronts one of the sample applications with a real
// net/http server, playing the online phase of OROCHI: the embedded
// collector records the trace at the HTTP boundary (the paper's
// middlebox), the recording runtime produces reports, and on shutdown
// (or on demand via /-/flush) the trace, reports, and initial snapshot
// are written to disk for cmd/orochi-audit.
//
//	orochi-serve -app wiki -listen :8090 -out ./audit-data
//
// Application scripts map to URL paths: GET /view?page=X runs the "view"
// script with $_GET['page']='X'; POST bodies become $_POST; cookies
// become $_COOKIE. Two control endpoints exist outside the audited
// surface: /-/flush writes the artifacts, /-/stats reports counters.
//
// Optionally, -drive N self-drives the server with N workload requests
// through HTTP (a built-in load generator), then flushes and exits —
// the zero-setup path to produce audit artifacts.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"orochi/internal/apps"
	"orochi/internal/server"
	"orochi/internal/trace"
	"orochi/internal/workload"
)

func main() {
	appName := flag.String("app", "wiki", "application to serve (wiki, forum, hotcrp)")
	listen := flag.String("listen", ":8090", "listen address")
	outDir := flag.String("out", "audit-data", "directory for trace/reports/state artifacts")
	drive := flag.Int("drive", 0, "self-drive N workload requests over HTTP, then flush and exit")
	conc := flag.Int("concurrency", 8, "self-drive concurrency")
	flag.Parse()

	app := apps.ByName(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "orochi-serve: unknown app %q\n", *appName)
		os.Exit(2)
	}
	var w *workload.Workload
	switch *appName {
	case "wiki":
		p := workload.DefaultWikiParams().Scale(20)
		w = workload.Wiki(p)
	case "forum":
		p := workload.DefaultForumParams().Scale(20)
		w = workload.Forum(p)
	case "hotcrp":
		p := workload.DefaultHotCRPParams().Scale(20)
		w = workload.HotCRP(p)
	}

	srv := server.New(app.Compile(), server.Options{Record: true})
	exitOn(srv.Setup(app.Schema))
	exitOn(srv.Setup(w.Seed))
	snap := srv.Snapshot()
	exitOn(os.MkdirAll(*outDir, 0o755))
	exitOn(snap.WriteFile(filepath.Join(*outDir, "state.bin")))

	var flushMu sync.Mutex
	flush := func() error {
		flushMu.Lock()
		defer flushMu.Unlock()
		if err := srv.Trace().WriteFile(filepath.Join(*outDir, "trace.bin")); err != nil {
			return err
		}
		rep := srv.Reports()
		data, err := rep.Encode()
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*outDir, "reports.bin"), data, 0o644)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/-/flush", func(rw http.ResponseWriter, r *http.Request) {
		if err := flush(); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(rw, "flushed to %s\n", *outDir)
	})
	mux.HandleFunc("/-/stats", func(rw http.ResponseWriter, r *http.Request) {
		cpu, n := srv.CPU()
		fmt.Fprintf(rw, "requests=%d cpu=%v\n", n, cpu)
	})
	mux.HandleFunc("/", func(rw http.ResponseWriter, r *http.Request) {
		in, err := httpToInput(r)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		_, body := srv.Handle(in)
		if strings.HasPrefix(body, "HTTP 500") {
			rw.WriteHeader(http.StatusInternalServerError)
		}
		_, _ = io.WriteString(rw, body)
	})

	httpSrv := &http.Server{Addr: *listen, Handler: mux, ReadHeaderTimeout: 10 * time.Second}

	if *drive > 0 {
		go func() {
			if err := driveWorkload(*listen, w, *drive, *conc); err != nil {
				fmt.Fprintln(os.Stderr, "orochi-serve: drive:", err)
			}
			if err := flush(); err != nil {
				fmt.Fprintln(os.Stderr, "orochi-serve: flush:", err)
			}
			fmt.Printf("drove %d requests; artifacts in %s\n", *drive, *outDir)
			_ = httpSrv.Close()
		}()
	}

	fmt.Printf("serving %s on %s (artifacts -> %s; POST /-/flush to write them)\n",
		*appName, *listen, *outDir)
	err := httpSrv.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		exitOn(err)
	}
}

// httpToInput converts an HTTP request into the model's Input: the first
// path segment names the script, query params become $_GET, form fields
// $_POST, cookies $_COOKIE.
func httpToInput(r *http.Request) (trace.Input, error) {
	script := strings.Trim(r.URL.Path, "/")
	if script == "" {
		script = "index"
	}
	in := trace.Input{Script: script, Get: map[string]string{}, Post: map[string]string{}, Cookie: map[string]string{}}
	for k, vs := range r.URL.Query() {
		if len(vs) > 0 {
			in.Get[k] = vs[0]
		}
	}
	if r.Method == http.MethodPost {
		if err := r.ParseForm(); err != nil {
			return in, err
		}
		for k, vs := range r.PostForm {
			if len(vs) > 0 {
				in.Post[k] = vs[0]
			}
		}
	}
	for _, c := range r.Cookies() {
		in.Cookie[c.Name] = c.Value
	}
	return in, nil
}

// driveWorkload replays workload requests through the HTTP front end.
func driveWorkload(listen string, w *workload.Workload, n, conc int) error {
	base := "http://127.0.0.1" + listen
	if !strings.HasPrefix(listen, ":") {
		base = "http://" + listen
	}
	// Wait for the listener.
	for i := 0; i < 50; i++ {
		if _, err := http.Get(base + "/-/stats"); err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if n > len(w.Requests) {
		n = len(w.Requests)
	}
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for _, in := range w.Requests[:n] {
		wg.Add(1)
		sem <- struct{}{}
		go func(in trace.Input) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := sendOne(base, in); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(in)
	}
	wg.Wait()
	return firstErr
}

func sendOne(base string, in trace.Input) error {
	q := url.Values{}
	for k, v := range in.Get {
		q.Set(k, v)
	}
	target := base + "/" + in.Script
	if len(q) > 0 {
		target += "?" + q.Encode()
	}
	var req *http.Request
	var err error
	if len(in.Post) > 0 {
		form := url.Values{}
		for k, v := range in.Post {
			form.Set(k, v)
		}
		req, err = http.NewRequest(http.MethodPost, target, strings.NewReader(form.Encode()))
		if err == nil {
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		}
	} else {
		req, err = http.NewRequest(http.MethodGet, target, nil)
	}
	if err != nil {
		return err
	}
	for k, v := range in.Cookie {
		req.AddCookie(&http.Cookie{Name: k, Value: v})
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "orochi-serve:", err)
		os.Exit(2)
	}
}
