module orochi

go 1.24
